// Module-level tests: activation (ReLU / quantized ReLU + STE grads),
// batch norm (stats, normalisation, numerical gradient), conv/linear
// modules, optimizer behaviour, loss function.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace sia::nn {
namespace {

TEST(Activation, ReluForwardBackward) {
    Activation act;
    tensor::Tensor z(tensor::Shape{4}, {-1.0F, 0.0F, 0.5F, 2.0F});
    const auto out = act.forward(z, true);
    EXPECT_FLOAT_EQ(out.flat(0), 0.0F);
    EXPECT_FLOAT_EQ(out.flat(2), 0.5F);
    tensor::Tensor g(tensor::Shape{4});
    g.fill(1.0F);
    const auto gin = act.backward(g);
    EXPECT_FLOAT_EQ(gin.flat(0), 0.0F);
    EXPECT_FLOAT_EQ(gin.flat(1), 0.0F);
    EXPECT_FLOAT_EQ(gin.flat(2), 1.0F);
    EXPECT_FLOAT_EQ(gin.flat(3), 1.0F);
}

TEST(Activation, QuantReluLevels) {
    Activation act;
    act.set_step(1.0F);
    act.enable_quant(4);
    act.set_step(1.0F);  // enable_quant may override from calibration
    tensor::Tensor z(tensor::Shape{6}, {-0.5F, 0.1F, 0.3F, 0.55F, 0.9F, 2.0F});
    const auto out = act.forward(z, false);
    // h(z) = 0.25 * clip(floor(4z + 0.5), 0, 4)
    EXPECT_FLOAT_EQ(out.flat(0), 0.0F);
    EXPECT_FLOAT_EQ(out.flat(1), 0.0F);   // floor(0.4+0.5)=0
    EXPECT_FLOAT_EQ(out.flat(2), 0.25F);  // floor(1.2+0.5)=1
    EXPECT_FLOAT_EQ(out.flat(3), 0.5F);   // floor(2.2+0.5)=2
    EXPECT_FLOAT_EQ(out.flat(4), 1.0F);   // floor(3.6+0.5)=4 -> 4
    EXPECT_FLOAT_EQ(out.flat(5), 1.0F);   // saturates at s
}

TEST(Activation, QuantReluSteGradients) {
    Activation act;
    act.set_step(1.0F);
    act.enable_quant(2);
    act.set_step(1.0F);
    tensor::Tensor z(tensor::Shape{3}, {-0.5F, 0.5F, 1.5F});
    (void)act.forward(z, true);
    tensor::Tensor g(tensor::Shape{3});
    g.fill(2.0F);
    act.step_param().zero_grad();
    const auto gin = act.backward(g);
    EXPECT_FLOAT_EQ(gin.flat(0), 0.0F);  // below zero: blocked
    EXPECT_FLOAT_EQ(gin.flat(1), 2.0F);  // linear region: pass-through
    EXPECT_FLOAT_EQ(gin.flat(2), 0.0F);  // saturated: blocked
    EXPECT_FLOAT_EQ(act.step_param().grad.flat(0), 2.0F);  // dL/ds from saturated
}

TEST(Activation, CalibrationPicksMseOptimalStep) {
    Activation act;
    act.begin_calibration();
    // A dense body of small values with a thin tail of moderate
    // outliers: the MSE-optimal step should clip below the max so the
    // body keeps resolution.
    tensor::Tensor z(tensor::Shape{1000});
    util::Rng rng(5);
    for (std::int64_t i = 0; i < 990; ++i) z.flat(i) = rng.uniform(0.15F, 0.25F);
    for (std::int64_t i = 990; i < 1000; ++i) z.flat(i) = 2.0F;
    (void)act.forward(z, false);
    act.end_calibration();
    act.enable_quant(4);
    EXPECT_LT(act.step(), 1.5F);  // clipped below the outlier tail
    EXPECT_GT(act.step(), 0.1F);
}

TEST(Activation, CalibrationTracksMax) {
    Activation act;
    act.begin_calibration();
    tensor::Tensor z(tensor::Shape{2}, {0.5F, 3.5F});
    (void)act.forward(z, false);
    act.end_calibration();
    EXPECT_FLOAT_EQ(act.calibrated_max(), 3.5F);
}

TEST(BatchNorm, NormalisesBatchStatistics) {
    util::Rng rng(1);
    BatchNorm2d bn(2);
    tensor::Tensor x(tensor::Shape{4, 2, 3, 3});
    x.randn_(rng, 3.0F);
    const auto out = bn.forward(x, true);
    // Per-channel mean ~0 and var ~1 after normalisation (affine is identity).
    for (std::int64_t c = 0; c < 2; ++c) {
        double mean = 0.0;
        double var = 0.0;
        const std::int64_t count = 4 * 9;
        for (std::int64_t s = 0; s < 4; ++s) {
            for (std::int64_t i = 0; i < 9; ++i) {
                mean += out.flat((s * 2 + c) * 9 + i);
            }
        }
        mean /= count;
        for (std::int64_t s = 0; s < 4; ++s) {
            for (std::int64_t i = 0; i < 9; ++i) {
                const double d = out.flat((s * 2 + c) * 9 + i) - mean;
                var += d * d;
            }
        }
        var /= count;
        EXPECT_NEAR(mean, 0.0, 1e-5);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(BatchNorm, InferenceUsesRunningStats) {
    util::Rng rng(2);
    BatchNorm2d bn(1, "bn", /*momentum=*/1.0F);  // running <- batch exactly
    tensor::Tensor x(tensor::Shape{8, 1, 2, 2});
    x.randn_(rng, 2.0F);
    (void)bn.forward(x, true);
    const auto out = bn.forward(x, false);
    // With momentum 1 the running stats equal the batch stats, so
    // inference output matches training output closely (biased var).
    const auto ref = bn.forward(x, true);
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        EXPECT_NEAR(out.flat(i), ref.flat(i), 2e-2F);
    }
}

TEST(BatchNorm, NumericalGradient) {
    util::Rng rng(3);
    BatchNorm2d bn(2);
    tensor::Tensor x(tensor::Shape{2, 2, 2, 2});
    x.randn_(rng, 1.0F);

    // Loss: weighted sum so the gradient is non-uniform.
    tensor::Tensor w(x.shape());
    w.randn_(rng, 1.0F);
    const auto loss_of = [&](const tensor::Tensor& y) {
        double acc = 0.0;
        for (std::int64_t i = 0; i < y.numel(); ++i) acc += double(y.flat(i)) * w.flat(i);
        return acc;
    };

    auto out = bn.forward(x, true);
    tensor::Tensor grad_out(out.shape());
    for (std::int64_t i = 0; i < w.numel(); ++i) grad_out.flat(i) = w.flat(i);
    const auto grad_in = bn.backward(grad_out);

    const float eps = 1e-3F;
    for (const std::int64_t idx : {0L, 5L, 11L, 15L}) {
        const float orig = x.flat(idx);
        x.flat(idx) = orig + eps;
        const double lp = loss_of(bn.forward(x, true));
        x.flat(idx) = orig - eps;
        const double lm = loss_of(bn.forward(x, true));
        x.flat(idx) = orig;
        EXPECT_NEAR(grad_in.flat(idx), (lp - lm) / (2 * eps), 2e-2) << idx;
    }
}

TEST(Conv2dModule, AccumulatesGradients) {
    util::Rng rng(4);
    Conv2d conv({2, 3, 3, 1, 1}, rng);
    tensor::Tensor x(tensor::Shape{1, 2, 4, 4});
    x.randn_(rng, 1.0F);
    (void)conv.forward(x, true);
    tensor::Tensor g(tensor::Shape{1, 3, 4, 4});
    g.fill(1.0F);
    (void)conv.backward(g);
    const float after_one = conv.weight().grad.flat(0);
    (void)conv.forward(x, true);
    (void)conv.backward(g);
    EXPECT_NEAR(conv.weight().grad.flat(0), 2.0F * after_one, 1e-4F);
}

TEST(Sgd, MomentumAndDecayStep) {
    Param p(tensor::Shape{1});
    p.value.flat(0) = 1.0F;
    p.grad.flat(0) = 1.0F;
    SgdConfig cfg;
    cfg.lr = 0.1F;
    cfg.momentum = 0.0F;
    cfg.weight_decay = 0.0F;
    Sgd opt({&p}, cfg);
    opt.step();
    EXPECT_NEAR(p.value.flat(0), 0.9F, 1e-6F);
    EXPECT_FLOAT_EQ(p.grad.flat(0), 0.0F);  // zeroed after step

    // Weight decay pulls the value further.
    Param q(tensor::Shape{1});
    q.value.flat(0) = 1.0F;
    q.grad.flat(0) = 0.0F;
    SgdConfig cfg2;
    cfg2.lr = 0.1F;
    cfg2.momentum = 0.0F;
    cfg2.weight_decay = 0.5F;
    Sgd opt2({&q}, cfg2);
    opt2.step();
    EXPECT_NEAR(q.value.flat(0), 1.0F - 0.1F * 0.5F, 1e-6F);

    // decay=false parameters are exempt.
    Param r(tensor::Shape{1});
    r.decay = false;
    r.value.flat(0) = 1.0F;
    Sgd opt3({&r}, cfg2);
    opt3.step();
    EXPECT_FLOAT_EQ(r.value.flat(0), 1.0F);
}

TEST(CosineLr, EndpointsAndMidpoint) {
    EXPECT_FLOAT_EQ(cosine_lr(1.0F, 0.0F, 0, 100), 1.0F);
    EXPECT_NEAR(cosine_lr(1.0F, 0.0F, 50, 100), 0.5F, 1e-6F);
    EXPECT_NEAR(cosine_lr(1.0F, 0.0F, 100, 100), 0.0F, 1e-6F);
}

TEST(Loss, SoftmaxCrossEntropyKnownValues) {
    // Uniform logits -> loss = log(K); gradient rows sum to 0.
    tensor::Tensor logits(tensor::Shape{2, 4});
    const LossResult res = softmax_cross_entropy(logits, {0, 3});
    EXPECT_NEAR(res.loss, std::log(4.0F), 1e-5F);
    for (std::int64_t i = 0; i < 2; ++i) {
        double row = 0.0;
        for (std::int64_t j = 0; j < 4; ++j) row += res.grad_logits.at(i, j);
        EXPECT_NEAR(row, 0.0, 1e-6);
    }
}

TEST(Loss, CorrectCount) {
    tensor::Tensor logits(tensor::Shape{2, 3}, {5.0F, 0.0F, 0.0F, 0.0F, 0.0F, 5.0F});
    const LossResult res = softmax_cross_entropy(logits, {0, 2});
    EXPECT_EQ(res.correct, 2);
    const LossResult res2 = softmax_cross_entropy(logits, {1, 2});
    EXPECT_EQ(res2.correct, 1);
}

TEST(Loss, GradientPointsTowardLabel) {
    tensor::Tensor logits(tensor::Shape{1, 3}, {1.0F, 2.0F, 3.0F});
    const LossResult res = softmax_cross_entropy(logits, {0});
    EXPECT_LT(res.grad_logits.at(0, 0), 0.0F);  // push label logit up
    EXPECT_GT(res.grad_logits.at(0, 2), 0.0F);  // push others down
}

TEST(Loss, LabelCountMismatchThrows) {
    tensor::Tensor logits(tensor::Shape{2, 3});
    EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
}

}  // namespace
}  // namespace sia::nn
