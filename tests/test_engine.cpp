// Functional SNN engine tests: layer execution, spike propagation,
// residual routing (identity + downsample + from-input), readout
// accumulation, reset/run semantics and rate-coding properties.
#include <gtest/gtest.h>

#include "snn/encoding.hpp"
#include "snn/engine.hpp"

namespace sia::snn {
namespace {

/// One conv layer (identity-ish) + readout FC, hand-built.
SnnModel two_layer_model() {
    SnnModel model;
    model.input_channels = 1;
    model.input_h = 3;
    model.input_w = 3;
    model.classes = 2;

    SnnLayer conv;
    conv.op = LayerOp::kConv;
    conv.label = "conv";
    conv.input = -1;
    conv.main.in_channels = 1;
    conv.main.out_channels = 1;
    conv.main.kernel = 1;
    conv.main.stride = 1;
    conv.main.padding = 0;
    conv.main.weights = {100};          // strong positive weight
    conv.main.gain = {512};             // gain 2.0 at shift 8
    conv.main.bias = {0};
    conv.out_channels = 1;
    conv.out_h = 3;
    conv.out_w = 3;
    conv.in_h = 3;
    conv.in_w = 3;
    model.layers.push_back(conv);

    SnnLayer fc;
    fc.op = LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 0;
    fc.spiking = false;
    fc.main.in_features = 9;
    fc.main.out_features = 2;
    fc.main.weights.assign(18, 0);
    for (int d = 0; d < 9; ++d) fc.main.weights[static_cast<std::size_t>(d)] = 1;  // class 0 counts spikes
    fc.main.gain = {256, 256};
    fc.main.bias = {0, 0};
    fc.out_channels = 2;
    model.layers.push_back(fc);
    return model;
}

TEST(Engine, SpikePropagatesThroughConv) {
    const auto model = two_layer_model();
    FunctionalEngine engine(model);
    SpikeMap input(1, 3, 3);
    input.set(0, 1, 1, true);
    engine.step(input);
    // psum = 100, current = (100*512)>>8 = 200; U = 128 + 200 = 328 >= 256
    // -> spike, U = 72.
    EXPECT_TRUE(engine.layer_spikes(0).get(0, 1, 1));
    EXPECT_EQ(engine.membrane(0)[4], 72);
    EXPECT_EQ(engine.spike_count(0), 1);
}

TEST(Engine, SilentInputOnlyLeavesInitialPotential) {
    const auto model = two_layer_model();
    FunctionalEngine engine(model);
    const SpikeMap input(1, 3, 3);
    engine.step(input);
    EXPECT_EQ(engine.layer_spikes(0).count(), 0);
    for (const auto u : engine.membrane(0)) EXPECT_EQ(u, 128);
}

TEST(Engine, ReadoutAccumulatesSpikeCounts) {
    const auto model = two_layer_model();
    FunctionalEngine engine(model);
    SpikeMap input(1, 3, 3);
    for (std::int64_t i = 0; i < 9; ++i) input.set_flat(i, true);
    engine.step(input);
    // Every conv neuron spikes; readout class 0 counts 9 spikes through
    // unit gain: psum 9 -> m = 9.
    EXPECT_EQ(engine.readout()[0], 9);
    EXPECT_EQ(engine.readout()[1], 0);
    engine.step(input);
    EXPECT_EQ(engine.readout()[0], 18);  // accumulates across steps
}

TEST(Engine, ResetClearsState) {
    const auto model = two_layer_model();
    FunctionalEngine engine(model);
    SpikeMap input(1, 3, 3);
    input.set(0, 0, 0, true);
    engine.step(input);
    engine.reset();
    EXPECT_EQ(engine.spike_count(0), 0);
    EXPECT_EQ(engine.readout()[0], 0);
    for (const auto u : engine.membrane(0)) EXPECT_EQ(u, 128);
}

TEST(Engine, RunReturnsPerStepLogits) {
    const auto model = two_layer_model();
    tensor::Tensor img(tensor::Shape{1, 1, 3, 3});
    img.fill(1.0F);
    const auto train = encode_thermometer(img, 4);
    const RunResult res = run_snn(model, train);
    ASSERT_EQ(res.logits_per_step.size(), 4U);
    // Monotone accumulation for all-positive drive.
    for (std::size_t t = 1; t < 4; ++t) {
        EXPECT_GE(res.logits_per_step[t][0], res.logits_per_step[t - 1][0]);
    }
    EXPECT_EQ(res.predicted_class(3), 0);
    EXPECT_EQ(res.neuron_counts[0], 9);
}

TEST(Engine, ArgmaxTiesResolveToFirstIndex) {
    // The readout comparator is explicitly first-index-wins: an equal
    // later logit never displaces an earlier one.
    EXPECT_EQ(argmax_first(std::vector<std::int64_t>{3, 3, 3}), 0U);
    EXPECT_EQ(argmax_first(std::vector<std::int64_t>{1, 7, 7, 2}), 1U);
    EXPECT_EQ(argmax_first(std::vector<std::int64_t>{-5, -9, -5}), 0U);
    EXPECT_EQ(argmax_first(std::vector<std::int64_t>{0, 2, 5, 5}), 2U);
    EXPECT_EQ(argmax_first(std::vector<std::int64_t>{4}), 0U);
    EXPECT_EQ(argmax_first(std::vector<std::int64_t>{}), 0U);

    // RunResult::predicted_class goes through the same comparator.
    RunResult res;
    res.logits_per_step = {{5, 5, 1}};
    EXPECT_EQ(res.predicted_class(0), 0);
    res.logits_per_step = {{1, -2, 1}};
    EXPECT_EQ(res.predicted_class(0), 0);
}

TEST(Engine, InputGeometryMismatchThrows) {
    const auto model = two_layer_model();
    FunctionalEngine engine(model);
    const SpikeMap wrong(2, 3, 3);
    EXPECT_THROW(engine.step(wrong), std::invalid_argument);
}

/// Model with an identity residual: layer1 -> layer2 (+skip from layer1's
/// input, i.e. the network input).
SnnModel residual_model(bool identity) {
    SnnModel model;
    model.input_channels = 1;
    model.input_h = 2;
    model.input_w = 2;
    model.classes = 1;

    auto conv = [](const char* label) {
        SnnLayer l;
        l.op = LayerOp::kConv;
        l.label = label;
        l.main.in_channels = 1;
        l.main.out_channels = 1;
        l.main.kernel = 1;
        l.main.stride = 1;
        l.main.padding = 0;
        l.main.gain = {256};
        l.main.bias = {0};
        l.out_channels = 1;
        l.out_h = 2;
        l.out_w = 2;
        l.in_h = 2;
        l.in_w = 2;
        return l;
    };

    SnnLayer l0 = conv("l0");
    l0.input = -1;
    l0.main.weights = {127};
    model.layers.push_back(l0);

    SnnLayer l1 = conv("l1");
    l1.input = 0;
    l1.main.weights = {10};  // weak main path
    l1.skip_src = -1;        // residual from the network input
    if (identity) {
        l1.skip_is_identity = true;
        l1.identity_skip.charge = 300;  // one skip spike fires the neuron
    } else {
        l1.skip_is_identity = false;
        l1.skip.in_channels = 1;
        l1.skip.out_channels = 1;
        l1.skip.kernel = 1;
        l1.skip.stride = 1;
        l1.skip.padding = 0;
        l1.skip.weights = {127};
        l1.skip.gain = {600};
        l1.skip.bias = {0};
    }
    model.layers.push_back(l1);
    return model;
}

TEST(Engine, IdentitySkipInjectsCharge) {
    const auto model = residual_model(true);
    FunctionalEngine engine(model);
    SpikeMap input(1, 2, 2);
    input.set(0, 0, 0, true);
    engine.step(input);
    // l1 neuron (0,0): main current from l0 spike (10*1) = 10, plus
    // identity charge 300 from the input spike -> fires.
    EXPECT_TRUE(engine.layer_spikes(1).get(0, 0, 0));
    EXPECT_FALSE(engine.layer_spikes(1).get(0, 1, 1));
}

TEST(Engine, DownsampleSkipComputesConv) {
    const auto model = residual_model(false);
    FunctionalEngine engine(model);
    SpikeMap input(1, 2, 2);
    input.set(0, 1, 0, true);
    engine.step(input);
    // skip: psum 127 * gain 600 >> 8 = 297 -> fires at (1,0).
    EXPECT_TRUE(engine.layer_spikes(1).get(0, 1, 0));
    EXPECT_FALSE(engine.layer_spikes(1).get(0, 0, 1));
}

TEST(Engine, RateTracksInputValueProperty) {
    // Property: for a 1x1 identity-ish conv with gain such that current =
    // theta exactly when input spikes, output rate == input rate.
    SnnModel model;
    model.input_channels = 1;
    model.input_h = 1;
    model.input_w = 1;
    model.classes = 1;
    SnnLayer l;
    l.op = LayerOp::kConv;
    l.label = "id";
    l.input = -1;
    l.main.in_channels = 1;
    l.main.out_channels = 1;
    l.main.kernel = 1;
    l.main.stride = 1;
    l.main.padding = 0;
    l.main.weights = {64};
    l.main.gain = {1024};  // 64 * 1024 >> 8 = 256 = theta
    l.main.bias = {0};
    l.out_channels = 1;
    l.out_h = 1;
    l.out_w = 1;
    l.in_h = 1;
    l.in_w = 1;
    model.layers.push_back(l);

    for (const float v : {0.125F, 0.25F, 0.5F, 0.75F, 1.0F}) {
        tensor::Tensor img(tensor::Shape{1, 1, 1, 1});
        img.flat(0) = v;
        const auto train = encode_thermometer(img, 16);
        const RunResult res = run_snn(model, train);
        EXPECT_NEAR(res.spike_rate(0), v, 1.0 / 16.0) << "v=" << v;
    }
}

}  // namespace
}  // namespace sia::snn
