// Dense-gather vs scatter kernel equivalence, the FunctionalEngine's
// density-adaptive dispatch, and the vector-vs-scalar fire stage.
//
// The load-bearing properties: (1) conv_psum/linear_psum and their
// *_scatter forms perform the same multiset of exact int32 additions,
// so psums — and therefore spikes, membranes and logits — are
// bit-identical no matter which path (or per-step mixture of paths)
// runs; (2) the fused SoA fire kernels (compute::aggregate_fire_*)
// execute the same util/fixed_point lane recipe as the scalar
// aggregate()/update_neuron() loop, so the fire paths are bit-identical
// too. The matrix here sweeps densities {0, 1 spike, 5%, 50%, 100%} x
// stride/padding variants x identity/conv skip routing x IF/LIF
// neurons x subtract/zero reset x every dispatch x fire-path
// combination, on both word-aligned and odd ("tail") neuron counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/batch_runner.hpp"
#include "snn/compute.hpp"
#include "snn/engine.hpp"
#include "snn/model.hpp"
#include "snn/spike.hpp"
#include "util/rng.hpp"

namespace sia::snn {
namespace {

SpikeMap random_map(std::int64_t c, std::int64_t h, std::int64_t w, double density,
                    util::Rng& rng) {
    SpikeMap m(c, h, w);
    if (density >= 1.0) {
        for (std::int64_t i = 0; i < m.size(); ++i) m.set_flat(i, true);
    } else if (density > 0.0) {
        for (std::int64_t i = 0; i < m.size(); ++i) m.set_flat(i, rng.bernoulli(density));
    }
    return m;
}

SpikeMap single_spike_map(std::int64_t c, std::int64_t h, std::int64_t w,
                          std::int64_t flat) {
    SpikeMap m(c, h, w);
    m.set_flat(flat, true);
    return m;
}

Branch random_conv_branch(std::int64_t ic, std::int64_t oc, std::int64_t kernel,
                          std::int64_t stride, std::int64_t padding, util::Rng& rng) {
    Branch b;
    b.in_channels = ic;
    b.out_channels = oc;
    b.kernel = kernel;
    b.stride = stride;
    b.padding = padding;
    b.weights.resize(static_cast<std::size_t>(oc * ic * kernel * kernel));
    for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-128, 127));
    b.gain.assign(static_cast<std::size_t>(oc), 256);
    b.bias.assign(static_cast<std::size_t>(oc), 0);
    return b;
}

// ---- Kernel-level equivalence ----

TEST(ScatterKernels, ConvPsumMatrixMatchesGather) {
    util::Rng rng(101);
    const std::int64_t ic = 3;
    const std::int64_t oc = 4;
    const std::int64_t in_h = 7;
    const std::int64_t in_w = 5;
    for (const std::int64_t kernel : {1L, 3L}) {
        for (const std::int64_t stride : {1L, 2L}) {
            for (const std::int64_t padding : {0L, 1L}) {
                const std::int64_t out_h = (in_h + 2 * padding - kernel) / stride + 1;
                const std::int64_t out_w = (in_w + 2 * padding - kernel) / stride + 1;
                if (out_h <= 0 || out_w <= 0) continue;
                const Branch b = random_conv_branch(ic, oc, kernel, stride, padding, rng);
                const auto wt = compute::transpose_conv(b);
                std::vector<SpikeMap> cases;
                for (const double d : {0.0, 0.05, 0.5, 1.0}) {
                    cases.push_back(random_map(ic, in_h, in_w, d, rng));
                }
                cases.push_back(single_spike_map(ic, in_h, in_w, 0));
                cases.push_back(single_spike_map(ic, in_h, in_w, ic * in_h * in_w - 1));
                for (const SpikeMap& in : cases) {
                    std::vector<std::int32_t> gather(
                        static_cast<std::size_t>(out_h * out_w * oc), -1);
                    std::vector<std::int32_t> scatter(
                        static_cast<std::size_t>(out_h * out_w * oc), 7);
                    compute::conv_psum(b, wt, in, out_h, out_w, gather);
                    compute::conv_psum_scatter(b, wt, in, out_h, out_w, scatter);
                    EXPECT_EQ(gather, scatter)
                        << "k=" << kernel << " s=" << stride << " p=" << padding
                        << " spikes=" << in.count();
                }
            }
        }
    }
}

TEST(ScatterKernels, LinearPsumMatchesGather) {
    util::Rng rng(103);
    Branch b;
    b.in_features = 130;  // straddles two packed words + a tail
    b.out_features = 11;
    b.weights.resize(static_cast<std::size_t>(b.in_features * b.out_features));
    for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-128, 127));
    b.gain.assign(static_cast<std::size_t>(b.out_features), 256);
    b.bias.assign(static_cast<std::size_t>(b.out_features), 0);
    const auto wt = compute::transpose_linear(b);

    std::vector<SpikeMap> cases;
    for (const double d : {0.0, 0.05, 0.5, 1.0}) {
        cases.push_back(random_map(1, 1, b.in_features, d, rng));
    }
    cases.push_back(single_spike_map(1, 1, b.in_features, 64));
    for (const SpikeMap& in : cases) {
        std::vector<std::int32_t> gather(static_cast<std::size_t>(b.out_features), -1);
        std::vector<std::int32_t> scatter(static_cast<std::size_t>(b.out_features), 7);
        compute::linear_psum(b, wt, in, gather);
        compute::linear_psum_scatter(b, wt, in, scatter);
        EXPECT_EQ(gather, scatter) << "spikes=" << in.count();
    }
}

// ---- Engine-level equivalence matrix ----

/// conv stem -> residual block (identity skip) -> strided downsample
/// (conv skip) -> spiking FC -> readout. Exercises every dispatch site:
/// main conv, skip conv, linear, and the identity-skip fast path.
SnnModel matrix_model(NeuronKind neuron, ResetMode reset, util::Rng& rng) {
    SnnModel model;
    model.input_channels = 3;
    model.input_h = 8;
    model.input_w = 8;
    model.classes = 4;

    const auto tune = [&](SnnLayer& l) {
        l.neuron = neuron;
        l.reset = reset;
        l.leak_shift = 3;
    };

    SnnLayer stem;
    stem.op = LayerOp::kConv;
    stem.label = "stem";
    stem.input = -1;
    stem.main = random_conv_branch(3, 8, 3, 1, 1, rng);
    stem.out_channels = 8;
    stem.out_h = stem.out_w = 8;
    stem.in_h = stem.in_w = 8;
    tune(stem);
    model.layers.push_back(stem);

    SnnLayer res;
    res.op = LayerOp::kConv;
    res.label = "res";
    res.input = 0;
    res.main = random_conv_branch(8, 8, 3, 1, 1, rng);
    res.skip_src = 0;
    res.skip_is_identity = true;
    res.identity_skip.charge = 120;
    res.out_channels = 8;
    res.out_h = res.out_w = 8;
    res.in_h = res.in_w = 8;
    tune(res);
    model.layers.push_back(res);

    SnnLayer down;
    down.op = LayerOp::kConv;
    down.label = "down";
    down.input = 1;
    down.main = random_conv_branch(8, 16, 3, 2, 1, rng);
    down.skip_src = 1;
    down.skip_is_identity = false;
    down.skip = random_conv_branch(8, 16, 1, 2, 0, rng);
    down.out_channels = 16;
    down.out_h = down.out_w = 4;
    down.in_h = down.in_w = 8;
    tune(down);
    model.layers.push_back(down);

    SnnLayer fc;
    fc.op = LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 2;
    fc.main.in_features = 16 * 4 * 4;
    fc.main.out_features = 10;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 10));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-128, 127));
    fc.main.gain.assign(10, 256);
    fc.main.bias.assign(10, 0);
    fc.out_channels = 10;
    tune(fc);
    model.layers.push_back(fc);

    SnnLayer readout;
    readout.op = LayerOp::kLinear;
    readout.label = "readout";
    readout.input = 3;
    readout.spiking = false;
    readout.main.in_features = 10;
    readout.main.out_features = 4;
    readout.main.weights.resize(40);
    for (auto& w : readout.main.weights) {
        w = static_cast<std::int8_t>(rng.integer(-128, 127));
    }
    readout.main.gain.assign(4, 256);
    readout.main.bias.assign(4, 0);
    readout.out_channels = 4;
    model.layers.push_back(readout);
    return model;
}

/// As matrix_model but with awkward layer sizes that exercise the fused
/// kernels' 64-lane tail handling: 125 neurons (one full spike word +
/// a 61-bit tail, channel boundaries mid-word since the plane is 25),
/// 63 neurons (a single sub-word map), a 13-neuron spiking FC. Same
/// routing coverage: identity skip, conv skip, spiking FC, readout.
SnnModel tail_model(NeuronKind neuron, ResetMode reset, util::Rng& rng) {
    SnnModel model;
    model.input_channels = 3;
    model.input_h = 5;
    model.input_w = 5;
    model.classes = 3;

    const auto tune = [&](SnnLayer& l) {
        l.neuron = neuron;
        l.reset = reset;
        l.leak_shift = 3;
    };

    SnnLayer stem;
    stem.op = LayerOp::kConv;
    stem.label = "stem";
    stem.input = -1;
    stem.main = random_conv_branch(3, 5, 3, 1, 1, rng);
    stem.out_channels = 5;
    stem.out_h = stem.out_w = 5;
    stem.in_h = stem.in_w = 5;
    tune(stem);
    model.layers.push_back(stem);

    SnnLayer res;
    res.op = LayerOp::kConv;
    res.label = "res";
    res.input = 0;
    res.main = random_conv_branch(5, 5, 3, 1, 1, rng);
    res.skip_src = 0;
    res.skip_is_identity = true;
    res.identity_skip.charge = 120;
    res.out_channels = 5;
    res.out_h = res.out_w = 5;
    res.in_h = res.in_w = 5;
    tune(res);
    model.layers.push_back(res);

    SnnLayer down;
    down.op = LayerOp::kConv;
    down.label = "down";
    down.input = 1;
    down.main = random_conv_branch(5, 7, 3, 2, 1, rng);
    down.skip_src = 1;
    down.skip_is_identity = false;
    down.skip = random_conv_branch(5, 7, 1, 2, 0, rng);
    down.out_channels = 7;
    down.out_h = down.out_w = 3;
    down.in_h = down.in_w = 5;
    tune(down);
    model.layers.push_back(down);

    SnnLayer fc;
    fc.op = LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 2;
    fc.main.in_features = 7 * 3 * 3;
    fc.main.out_features = 13;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 13));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-128, 127));
    fc.main.gain.assign(13, 256);
    fc.main.bias.assign(13, 0);
    fc.out_channels = 13;
    tune(fc);
    model.layers.push_back(fc);

    SnnLayer readout;
    readout.op = LayerOp::kLinear;
    readout.label = "readout";
    readout.input = 3;
    readout.spiking = false;
    readout.main.in_features = 13;
    readout.main.out_features = 3;
    readout.main.weights.resize(39);
    for (auto& w : readout.main.weights) {
        w = static_cast<std::int8_t>(rng.integer(-128, 127));
    }
    readout.main.gain.assign(3, 256);
    readout.main.bias.assign(3, 0);
    readout.out_channels = 3;
    model.layers.push_back(readout);
    return model;
}

/// Conv-skip layer on a channel-uniform plane (8x8 = exactly one
/// 64-neuron word per channel): the fused kernels then take the
/// per-word coefficient-broadcast fast path for BOTH the main and the
/// skip aggregate (kUniform + conv skip), which no other model in this
/// file reaches — matrix_model's conv skip has plane 16, tail_model's
/// plane 9.
SnnModel uniform_skip_model(NeuronKind neuron, ResetMode reset, util::Rng& rng) {
    SnnModel model;
    model.input_channels = 3;
    model.input_h = 8;
    model.input_w = 8;
    model.classes = 3;

    const auto tune = [&](SnnLayer& l) {
        l.neuron = neuron;
        l.reset = reset;
        l.leak_shift = 3;
    };

    SnnLayer stem;
    stem.op = LayerOp::kConv;
    stem.label = "stem";
    stem.input = -1;
    stem.main = random_conv_branch(3, 4, 3, 1, 1, rng);
    stem.out_channels = 4;
    stem.out_h = stem.out_w = 8;
    stem.in_h = stem.in_w = 8;
    tune(stem);
    model.layers.push_back(stem);

    SnnLayer proj;
    proj.op = LayerOp::kConv;
    proj.label = "proj";
    proj.input = 0;
    proj.main = random_conv_branch(4, 6, 3, 1, 1, rng);
    proj.skip_src = 0;
    proj.skip_is_identity = false;
    proj.skip = random_conv_branch(4, 6, 1, 1, 0, rng);
    proj.out_channels = 6;
    proj.out_h = proj.out_w = 8;
    proj.in_h = proj.in_w = 8;
    tune(proj);
    model.layers.push_back(proj);

    SnnLayer readout;
    readout.op = LayerOp::kLinear;
    readout.label = "readout";
    readout.input = 1;
    readout.spiking = false;
    readout.main.in_features = 6 * 8 * 8;
    readout.main.out_features = 3;
    readout.main.weights.resize(static_cast<std::size_t>(6 * 8 * 8 * 3));
    for (auto& w : readout.main.weights) {
        w = static_cast<std::int8_t>(rng.integer(-128, 127));
    }
    readout.main.gain.assign(3, 256);
    readout.main.bias.assign(3, 0);
    readout.out_channels = 3;
    model.layers.push_back(readout);
    return model;
}

SpikeTrain matrix_train(const SnnModel& model, double density, bool single_spike,
                        util::Rng& rng) {
    SpikeTrain train;
    for (std::int64_t t = 0; t < 6; ++t) {
        if (single_spike) {
            train.push_back(single_spike_map(
                model.input_channels, model.input_h, model.input_w,
                rng.integer(0, model.input_channels * model.input_h * model.input_w - 1)));
        } else {
            train.push_back(
                random_map(model.input_channels, model.input_h, model.input_w, density, rng));
        }
    }
    return train;
}

void expect_same_run(const SnnModel& model, const SpikeTrain& train) {
    // Reference: dense gather + scalar fire (the pre-vectorization
    // engine). Every dispatch x fire-path combination must match it.
    struct Variant {
        const char* name;
        EngineConfig config;
    };
    const std::vector<Variant> variants = {
        {"dense/vector", {.dispatch = DispatchMode::kDense}},
        {"scatter/scalar",
         {.dispatch = DispatchMode::kScatter, .fire = FirePath::kScalar}},
        {"scatter/vector", {.dispatch = DispatchMode::kScatter}},
        {"adaptive/scalar", {.fire = FirePath::kScalar}},
        {"adaptive/vector", {}},
    };
    const EngineConfig reference_config{.dispatch = DispatchMode::kDense,
                                        .fire = FirePath::kScalar};
    FunctionalEngine reference(model, reference_config);
    std::vector<std::unique_ptr<FunctionalEngine>> engines;
    for (const Variant& v : variants) {
        engines.push_back(std::make_unique<FunctionalEngine>(model, v.config));
    }

    // Step-level comparison so a divergence pinpoints its first timestep.
    for (std::size_t t = 0; t < train.size(); ++t) {
        reference.step(train[t]);
        for (std::size_t e = 0; e < engines.size(); ++e) {
            FunctionalEngine& engine = *engines[e];
            engine.step(train[t]);
            for (std::size_t l = 0; l < model.layers.size(); ++l) {
                ASSERT_TRUE(reference.layer_spikes(l) == engine.layer_spikes(l))
                    << variants[e].name << " t=" << t << " layer=" << l;
                const auto mr = reference.membrane(l);
                const auto me = engine.membrane(l);
                ASSERT_TRUE(std::equal(mr.begin(), mr.end(), me.begin(), me.end()))
                    << variants[e].name << " t=" << t << " layer=" << l;
            }
            ASSERT_EQ(reference.readout(), engine.readout())
                << variants[e].name << " t=" << t;
        }
    }

    // Whole-run results (fresh engines through run()).
    const RunResult ref = run_snn(model, train, reference_config);
    for (const Variant& v : variants) {
        const RunResult got = run_snn(model, train, v.config);
        EXPECT_EQ(ref.logits_per_step, got.logits_per_step) << v.name;
        EXPECT_EQ(ref.spike_counts, got.spike_counts) << v.name;
    }
}

TEST(DispatchEquivalence, DensityNeuronSkipMatrix) {
    util::Rng rng(202);
    for (const NeuronKind neuron : {NeuronKind::kIf, NeuronKind::kLif}) {
        for (const ResetMode reset : {ResetMode::kSubtract, ResetMode::kZero}) {
            const SnnModel model = matrix_model(neuron, reset, rng);
            expect_same_run(model, matrix_train(model, 0.0, false, rng));
            expect_same_run(model, matrix_train(model, 0.0, true, rng));  // 1 spike/step
            expect_same_run(model, matrix_train(model, 0.05, false, rng));
            expect_same_run(model, matrix_train(model, 0.5, false, rng));
            expect_same_run(model, matrix_train(model, 1.0, false, rng));
        }
    }
}

TEST(DispatchEquivalence, TailMaskDensityNeuronSkipMatrix) {
    // Odd neuron counts: every layer ends mid-word, so the fused fire
    // kernels' padded lanes and tail masking are on the critical path.
    util::Rng rng(203);
    for (const NeuronKind neuron : {NeuronKind::kIf, NeuronKind::kLif}) {
        for (const ResetMode reset : {ResetMode::kSubtract, ResetMode::kZero}) {
            const SnnModel model = tail_model(neuron, reset, rng);
            expect_same_run(model, matrix_train(model, 0.0, false, rng));
            expect_same_run(model, matrix_train(model, 0.0, true, rng));  // 1 spike/step
            expect_same_run(model, matrix_train(model, 0.05, false, rng));
            expect_same_run(model, matrix_train(model, 0.5, false, rng));
            expect_same_run(model, matrix_train(model, 1.0, false, rng));
        }
    }
}

TEST(DispatchEquivalence, UniformPlaneConvSkipMatrix) {
    // Channel-uniform fused path with a residual downsample branch.
    util::Rng rng(204);
    for (const NeuronKind neuron : {NeuronKind::kIf, NeuronKind::kLif}) {
        for (const ResetMode reset : {ResetMode::kSubtract, ResetMode::kZero}) {
            const SnnModel model = uniform_skip_model(neuron, reset, rng);
            expect_same_run(model, matrix_train(model, 0.0, true, rng));
            expect_same_run(model, matrix_train(model, 0.05, false, rng));
            expect_same_run(model, matrix_train(model, 0.5, false, rng));
            expect_same_run(model, matrix_train(model, 1.0, false, rng));
        }
    }
}

// ---- Dispatch accounting ----

TEST(DispatchCounters, AdaptiveSplitsByDensityThreshold) {
    util::Rng rng(303);
    const SnnModel model = matrix_model(NeuronKind::kIf, ResetMode::kSubtract, rng);
    SpikeTrain train = matrix_train(model, 0.02, false, rng);  // sparse steps
    train.push_back(random_map(model.input_channels, model.input_h, model.input_w, 1.0,
                               rng));  // one saturated step

    FunctionalEngine engine(model, {.scatter_density_threshold = 0.5});
    for (const auto& frame : train) engine.step(frame);

    const LayerDispatchStats& stem = engine.dispatch_stats(0);
    EXPECT_EQ(stem.scatter_steps, 6);  // the sparse steps
    EXPECT_EQ(stem.dense_steps, 1);    // the saturated step (density 1 >= 0.5)
    EXPECT_EQ(stem.input_sites,
              static_cast<std::int64_t>(train.size()) * model.input_channels *
                  model.input_h * model.input_w);
    std::int64_t spikes = 0;
    for (const auto& frame : train) spikes += frame.count();
    EXPECT_EQ(stem.input_spikes, spikes);
    EXPECT_NEAR(stem.mean_input_density(),
                static_cast<double>(spikes) / static_cast<double>(stem.input_sites),
                1e-12);

    // Forced modes never touch the other path, whatever the density.
    FunctionalEngine forced_dense(model, {.dispatch = DispatchMode::kDense});
    FunctionalEngine forced_scatter(model, {.dispatch = DispatchMode::kScatter});
    for (const auto& frame : train) {
        forced_dense.step(frame);
        forced_scatter.step(frame);
    }
    for (std::size_t l = 0; l < model.layers.size(); ++l) {
        EXPECT_EQ(forced_dense.dispatch_stats(l).scatter_steps, 0) << l;
        EXPECT_EQ(forced_scatter.dispatch_stats(l).dense_steps, 0) << l;
    }

    // run() surfaces the counters; reset() clears them.
    const RunResult res = engine.run(train);
    ASSERT_EQ(res.layer_dispatch.size(), model.layers.size());
    EXPECT_EQ(res.layer_dispatch[0].scatter_steps, 6);
    EXPECT_EQ(res.layer_dispatch[0].dense_steps, 1);
    engine.reset();
    EXPECT_EQ(engine.dispatch_stats(0).scatter_steps, 0);
    EXPECT_EQ(engine.dispatch_stats(0).input_sites, 0);
}

TEST(DispatchCounters, ThresholdZeroMeansAlwaysDense) {
    util::Rng rng(404);
    const SnnModel model = matrix_model(NeuronKind::kIf, ResetMode::kSubtract, rng);
    FunctionalEngine engine(model, {.scatter_density_threshold = 0.0});
    const SpikeTrain train = matrix_train(model, 0.05, false, rng);
    for (const auto& frame : train) engine.step(frame);
    EXPECT_EQ(engine.dispatch_stats(0).scatter_steps, 0);
    EXPECT_EQ(engine.dispatch_stats(0).dense_steps,
              static_cast<std::int64_t>(train.size()));
}

TEST(DispatchCounters, FirePathCountersTrackConfiguredPath) {
    util::Rng rng(606);
    const SnnModel model = matrix_model(NeuronKind::kIf, ResetMode::kSubtract, rng);
    const SpikeTrain train = matrix_train(model, 0.05, false, rng);
    const auto steps = static_cast<std::int64_t>(train.size());

    FunctionalEngine vector_engine(model, {});  // default: vectorized fire
    FunctionalEngine scalar_engine(model, {.fire = FirePath::kScalar});
    for (const auto& frame : train) {
        vector_engine.step(frame);
        scalar_engine.step(frame);
    }
    for (std::size_t l = 0; l < model.layers.size(); ++l) {
        const bool spiking = model.layers[l].spiking;
        // Spiking layers fire once per step through the configured path;
        // the readout layer has no fire stage and counts neither.
        EXPECT_EQ(vector_engine.dispatch_stats(l).vector_fire_steps,
                  spiking ? steps : 0)
            << l;
        EXPECT_EQ(vector_engine.dispatch_stats(l).scalar_fire_steps, 0) << l;
        EXPECT_EQ(scalar_engine.dispatch_stats(l).scalar_fire_steps,
                  spiking ? steps : 0)
            << l;
        EXPECT_EQ(scalar_engine.dispatch_stats(l).vector_fire_steps, 0) << l;
    }

    // run() surfaces the counters; reset() clears them.
    const RunResult res = vector_engine.run(train);
    EXPECT_EQ(res.layer_dispatch[0].vector_fire_steps, steps);
    vector_engine.reset();
    EXPECT_EQ(vector_engine.dispatch_stats(0).vector_fire_steps, 0);
}

// ---- BatchRunner plumbing ----

TEST(BatchRunnerDispatch, EngineConfigPreservesBitExactness) {
    util::Rng rng(505);
    const SnnModel model = matrix_model(NeuronKind::kLif, ResetMode::kSubtract, rng);
    std::vector<SpikeTrain> batch;
    for (int i = 0; i < 6; ++i) {
        batch.push_back(matrix_train(model, 0.02 + 0.2 * i, false, rng));
    }
    std::vector<core::Request> requests;
    for (const auto& train : batch) requests.push_back(core::Request::view_train(train));

    core::BatchRunner dense_runner(
        model, {.threads = 2, .engine = {.dispatch = DispatchMode::kDense}});
    core::BatchRunner scatter_runner(
        model, {.threads = 2, .engine = {.dispatch = DispatchMode::kScatter}});
    core::BatchRunner adaptive_runner(model, {.threads = 2});
    core::BatchRunner scalar_fire_runner(
        model, {.threads = 2, .engine = {.fire = FirePath::kScalar}});
    const auto rd = dense_runner.run(requests);
    const auto rs = scatter_runner.run(requests);
    const auto ra = adaptive_runner.run(requests);
    const auto rf = scalar_fire_runner.run(requests);
    ASSERT_EQ(rd.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(rd[i].logits_per_step, rs[i].logits_per_step) << i;
        EXPECT_EQ(rd[i].logits_per_step, ra[i].logits_per_step) << i;
        EXPECT_EQ(rd[i].logits_per_step, rf[i].logits_per_step) << i;
        EXPECT_EQ(rd[i].spike_counts, rs[i].spike_counts) << i;
        EXPECT_EQ(rd[i].spike_counts, ra[i].spike_counts) << i;
        EXPECT_EQ(rd[i].spike_counts, rf[i].spike_counts) << i;
    }
}

}  // namespace
}  // namespace sia::snn
