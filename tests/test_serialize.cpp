// SnnModel serialization round-trip and corruption-handling tests, plus
// the deployment property: a loaded model is bit-identical in execution
// to the original (functional engine outputs match exactly).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/convert.hpp"
#include "nn/vgg.hpp"
#include "snn/encoding.hpp"
#include "snn/engine.hpp"
#include "snn/serialize.hpp"

namespace sia::snn {
namespace {

SnnModel make_model() {
    util::Rng rng(77);
    nn::VggConfig cfg;
    cfg.width = 4;
    cfg.input_size = 16;
    nn::Vgg11 ann(cfg, rng);
    tensor::Tensor x(tensor::Shape{2, 3, 16, 16});
    for (std::int64_t i = 0; i < x.numel(); ++i) x.flat(i) = rng.uniform(0.0F, 1.0F);
    (void)ann.forward(x, true);
    ann.begin_activation_calibration();
    (void)ann.forward(x, false);
    ann.end_activation_calibration();
    ann.enable_quantized_activations(2);
    return core::AnnToSnnConverter().convert(ann.ir());
}

TEST(Serialize, RoundTripPreservesEveryField) {
    const SnnModel model = make_model();
    std::stringstream buf;
    save_model(model, buf);
    const SnnModel back = load_model(buf);

    EXPECT_EQ(back.name, model.name);
    EXPECT_EQ(back.input_channels, model.input_channels);
    EXPECT_EQ(back.classes, model.classes);
    ASSERT_EQ(back.layers.size(), model.layers.size());
    for (std::size_t i = 0; i < model.layers.size(); ++i) {
        const auto& a = model.layers[i];
        const auto& b = back.layers[i];
        EXPECT_EQ(b.label, a.label);
        EXPECT_EQ(b.input, a.input);
        EXPECT_EQ(b.main.weights, a.main.weights);
        EXPECT_EQ(b.main.gain, a.main.gain);
        EXPECT_EQ(b.main.bias, a.main.bias);
        EXPECT_EQ(b.main.gain_shift, a.main.gain_shift);
        EXPECT_FLOAT_EQ(b.main.weight_scale, a.main.weight_scale);
        EXPECT_EQ(b.main.stream_weight_bytes, a.main.stream_weight_bytes);
        EXPECT_EQ(b.threshold, a.threshold);
        EXPECT_EQ(b.initial_potential, a.initial_potential);
        EXPECT_EQ(b.spiking, a.spiking);
        EXPECT_EQ(static_cast<int>(b.neuron), static_cast<int>(a.neuron));
        EXPECT_EQ(static_cast<int>(b.reset), static_cast<int>(a.reset));
        EXPECT_FLOAT_EQ(b.step_size, a.step_size);
        EXPECT_EQ(b.out_channels, a.out_channels);
    }
}

TEST(Serialize, LoadedModelExecutesBitIdentically) {
    const SnnModel model = make_model();
    std::stringstream buf;
    save_model(model, buf);
    const SnnModel back = load_model(buf);

    util::Rng rng(78);
    tensor::Tensor img(tensor::Shape{1, 3, 16, 16});
    for (std::int64_t i = 0; i < img.numel(); ++i) img.flat(i) = rng.uniform(0.0F, 1.0F);
    const auto train = encode_thermometer(img, 6);

    const RunResult a = run_snn(model, train);
    const RunResult b = run_snn(back, train);
    EXPECT_EQ(a.logits_per_step, b.logits_per_step);
    EXPECT_EQ(a.spike_counts, b.spike_counts);
}

TEST(Serialize, FileRoundTrip) {
    const SnnModel model = make_model();
    const std::string path = "/tmp/sia_test_model.snn";
    save_model_file(model, path);
    const SnnModel back = load_model_file(path);
    EXPECT_EQ(back.layers.size(), model.layers.size());
    std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic) {
    std::stringstream buf;
    buf << "NOTASNNFILE-------------------------";
    EXPECT_THROW(load_model(buf), std::runtime_error);
}

TEST(Serialize, RejectsNewerVersion) {
    const SnnModel model = make_model();
    std::stringstream buf;
    save_model(model, buf);
    std::string bytes = buf.str();
    bytes[8] = char(99);  // bump the version field (first byte after magic)
    std::stringstream tampered(bytes);
    EXPECT_THROW(load_model(tampered), std::runtime_error);
}

TEST(Serialize, RejectsTruncation) {
    const SnnModel model = make_model();
    std::stringstream buf;
    save_model(model, buf);
    const std::string bytes = buf.str();
    for (const std::size_t cut : {bytes.size() / 4, bytes.size() / 2, bytes.size() - 3}) {
        std::stringstream truncated(bytes.substr(0, cut));
        EXPECT_THROW(load_model(truncated), std::runtime_error) << "cut=" << cut;
    }
}

TEST(Serialize, MissingFileThrows) {
    EXPECT_THROW(load_model_file("/nonexistent/model.snn"), std::runtime_error);
}

// ---- Spike-train container (packed-word raw round-trip) ----

TEST(SerializeTrain, PackedWordsRoundTripBitExactly) {
    util::Rng rng(55);
    SpikeTrain train(7, SpikeMap(3, 5, 9));  // 135 sites: word-boundary tail
    for (auto& m : train) {
        for (std::int64_t i = 0; i < m.size(); ++i) m.set_flat(i, rng.bernoulli(0.2));
    }
    std::stringstream buf;
    save_train(train, buf);
    const SpikeTrain back = load_train(buf);
    ASSERT_EQ(back.size(), train.size());
    for (std::size_t t = 0; t < train.size(); ++t) {
        EXPECT_TRUE(back[t] == train[t]) << "t=" << t;
        EXPECT_EQ(back[t].raw(), train[t].raw()) << "t=" << t;
        EXPECT_EQ(back[t].count(), train[t].count()) << "t=" << t;
    }
}

TEST(SerializeTrain, EmptyTrainRoundTrips) {
    std::stringstream buf;
    save_train(SpikeTrain{}, buf);
    EXPECT_TRUE(load_train(buf).empty());
}

TEST(SerializeTrain, RejectsBadMagicAndTruncation) {
    std::stringstream bad("not a spike train at all");
    EXPECT_THROW(load_train(bad), std::runtime_error);

    SpikeTrain train(3, SpikeMap(1, 4, 4));
    train[1].set_flat(5, true);
    std::stringstream buf;
    save_train(train, buf);
    const std::string bytes = buf.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() - 4));
    EXPECT_THROW(load_train(truncated), std::runtime_error);
}

TEST(SerializeTrain, RejectsMixedGeometry) {
    SpikeTrain train;
    train.emplace_back(1, 2, 2);
    train.emplace_back(1, 2, 3);
    std::stringstream buf;
    EXPECT_THROW(save_train(train, buf), std::runtime_error);
}

}  // namespace
}  // namespace sia::snn
