// SNN layer tests: spike maps, thermometer encoding, model validation,
// and IF/LIF neuron dynamics via the shared compute primitives.
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "snn/compute.hpp"
#include "snn/encoding.hpp"
#include "snn/exit.hpp"
#include "snn/model.hpp"
#include "snn/spike.hpp"
#include "util/rng.hpp"

namespace sia::snn {
namespace {

TEST(SpikeMap, SetGetCount) {
    SpikeMap m(2, 3, 4);
    EXPECT_EQ(m.size(), 24);
    EXPECT_EQ(m.count(), 0);
    m.set(1, 2, 3, true);
    EXPECT_TRUE(m.get(1, 2, 3));
    EXPECT_TRUE(m.get_flat(23));
    EXPECT_EQ(m.count(), 1);
    m.clear();
    EXPECT_EQ(m.count(), 0);
}

TEST(SpikeMap, MaintainedCountIsIdempotent) {
    SpikeMap m(1, 1, 100);
    m.set_flat(7, true);
    m.set_flat(7, true);  // double-set must not double-count
    EXPECT_EQ(m.count(), 1);
    m.set_flat(8, false);  // clearing a clear bit must not go negative
    EXPECT_EQ(m.count(), 1);
    m.set_flat(7, false);
    m.set_flat(7, false);
    EXPECT_EQ(m.count(), 0);
}

TEST(SpikeMap, IteratorVisitsSetBitsAscendingAcrossWords) {
    // Bits straddling word boundaries, in the word-skip + ctz path.
    SpikeMap m(2, 5, 17);  // 170 sites = 2 full words + a 42-bit tail
    const std::vector<std::int64_t> want = {0, 1, 62, 63, 64, 65, 127, 128, 169};
    for (const auto i : want) m.set_flat(i, true);
    std::vector<std::int64_t> got;
    m.for_each_spike([&](std::int64_t i) { got.push_back(i); });
    EXPECT_EQ(got, want);
    EXPECT_EQ(m.count(), static_cast<std::int64_t>(want.size()));
}

TEST(SpikeMap, IteratorMatchesGetFlatOnRandomMap) {
    util::Rng rng(41);
    SpikeMap m(3, 9, 11);
    std::vector<std::int64_t> want;
    for (std::int64_t i = 0; i < m.size(); ++i) {
        if (rng.bernoulli(0.3)) {
            m.set_flat(i, true);
            want.push_back(i);
        }
    }
    std::vector<std::int64_t> got;
    m.for_each_spike([&](std::int64_t i) { got.push_back(i); });
    EXPECT_EQ(got, want);
    EXPECT_EQ(m.count(), static_cast<std::int64_t>(want.size()));
}

TEST(SpikeMap, CountRangeMatchesScan) {
    util::Rng rng(43);
    SpikeMap m(4, 6, 7);  // 168 sites
    for (std::int64_t i = 0; i < m.size(); ++i) m.set_flat(i, rng.bernoulli(0.4));
    const auto scan = [&](std::int64_t b, std::int64_t e) {
        std::int64_t n = 0;
        for (std::int64_t i = b; i < e; ++i) n += m.get_flat(i) ? 1 : 0;
        return n;
    };
    // Within-word, word-crossing, word-aligned, full, and empty ranges.
    for (const auto& [b, e] : std::vector<std::pair<std::int64_t, std::int64_t>>{
             {0, 168}, {3, 9}, {60, 70}, {0, 64}, {64, 128}, {127, 129},
             {167, 168}, {42, 42}, {100, 42}}) {
        EXPECT_EQ(m.count_range(b, e), scan(b, e)) << "[" << b << ", " << e << ")";
    }
    // Per-channel split covers the whole map.
    const std::int64_t plane = m.height() * m.width();
    std::int64_t per_channel = 0;
    for (std::int64_t c = 0; c < m.channels(); ++c) {
        per_channel += m.count_range(c * plane, (c + 1) * plane);
    }
    EXPECT_EQ(per_channel, m.count());
}

TEST(SpikeMap, RawWordsRoundTripAndTailMasking) {
    SpikeMap m(1, 1, 70);  // 70 sites: one full word + a 6-bit tail
    m.set_flat(0, true);
    m.set_flat(69, true);
    ASSERT_EQ(m.raw().size(), 2U);

    SpikeMap back(1, 1, 70);
    back.set_words(m.raw());
    EXPECT_TRUE(back == m);
    EXPECT_EQ(back.count(), 2);

    // Stray bits past size() are cleared and never counted.
    std::vector<std::uint64_t> dirty = m.raw();
    dirty[1] |= ~std::uint64_t{0} << 6;
    back.set_words(dirty);
    EXPECT_TRUE(back == m);
    EXPECT_EQ(back.count(), 2);

    EXPECT_THROW(back.set_words(std::vector<std::uint64_t>(3, 0)),
                 std::invalid_argument);
}

TEST(Encoding, SpikeCountMatchesValue) {
    const std::int64_t timesteps = 8;
    tensor::Tensor img(tensor::Shape{1, 1, 2, 2}, {0.0F, 0.25F, 0.5F, 1.0F});
    const SpikeTrain train = encode_thermometer(img, timesteps);
    ASSERT_EQ(train.size(), 8U);
    std::vector<int> counts(4, 0);
    for (const auto& f : train) {
        for (std::int64_t i = 0; i < 4; ++i) counts[i] += f.get_flat(i) ? 1 : 0;
    }
    EXPECT_EQ(counts[0], 0);
    EXPECT_EQ(counts[1], 2);  // 0.25 * 8
    EXPECT_EQ(counts[2], 4);
    EXPECT_EQ(counts[3], 8);
}

TEST(Encoding, EvenSpread) {
    // v = 0.5, T = 8 -> spikes every other step, not a front burst.
    tensor::Tensor img(tensor::Shape{1, 1, 1, 1}, {0.5F});
    const SpikeTrain train = encode_thermometer(img, 8);
    int longest_run = 0;
    int run = 0;
    for (const auto& f : train) {
        run = f.get_flat(0) ? run + 1 : 0;
        longest_run = std::max(longest_run, run);
    }
    EXPECT_EQ(longest_run, 1);
}

TEST(Encoding, ClampsOutOfRange) {
    tensor::Tensor img(tensor::Shape{1, 1, 1, 2}, {-3.0F, 5.0F});
    const SpikeTrain train = encode_thermometer(img, 4);
    int c0 = 0;
    int c1 = 0;
    for (const auto& f : train) {
        c0 += f.get_flat(0) ? 1 : 0;
        c1 += f.get_flat(1) ? 1 : 0;
    }
    EXPECT_EQ(c0, 0);
    EXPECT_EQ(c1, 4);
}

TEST(Encoding, DecodeErrorBounded) {
    util::Rng rng(9);
    tensor::Tensor img(tensor::Shape{1, 2, 4, 4});
    for (std::int64_t i = 0; i < img.numel(); ++i) img.flat(i) = rng.uniform(0.0F, 1.0F);
    for (const std::int64_t timesteps : {4L, 8L, 16L}) {
        const SpikeTrain train = encode_thermometer(img, timesteps);
        double mean_v = 0.0;
        for (std::int64_t i = 0; i < img.numel(); ++i) mean_v += img.flat(i);
        mean_v /= static_cast<double>(img.numel());
        EXPECT_NEAR(decode_mean_rate(train), mean_v,
                    0.5 / static_cast<double>(timesteps));
    }
}

TEST(Encoding, RejectsBadInputs) {
    tensor::Tensor img(tensor::Shape{2, 1, 1, 1});
    EXPECT_THROW(encode_thermometer(img, 4), std::invalid_argument);
    tensor::Tensor ok(tensor::Shape{1, 1, 1, 1});
    EXPECT_THROW(encode_thermometer(ok, 0), std::invalid_argument);
}

TEST(FramesToTrain, Adapter) {
    tensor::Tensor frames(tensor::Shape{2, 1, 2, 2});
    frames.at(0, 0, 0, 1) = 1.0F;
    frames.at(1, 0, 1, 0) = 0.5F;  // nonzero counts as spike
    const SpikeTrain train = frames_to_train(frames);
    ASSERT_EQ(train.size(), 2U);
    EXPECT_TRUE(train[0].get(0, 0, 1));
    EXPECT_TRUE(train[1].get(0, 1, 0));
    EXPECT_EQ(train[0].count() + train[1].count(), 2);
}

// ---- Neuron dynamics through the shared compute primitives ----

SnnLayer if_layer() {
    SnnLayer layer;
    layer.threshold = 256;
    layer.reset = ResetMode::kSubtract;
    layer.neuron = NeuronKind::kIf;
    return layer;
}

TEST(Neuron, FiresAtThresholdAndSubtracts) {
    const SnnLayer layer = if_layer();
    bool spike = false;
    const auto u = compute::update_neuron(200, 100, layer, spike);
    EXPECT_TRUE(spike);
    EXPECT_EQ(u, 44);  // 300 - 256
}

TEST(Neuron, NoFireBelowThreshold) {
    const SnnLayer layer = if_layer();
    bool spike = true;
    const auto u = compute::update_neuron(100, 100, layer, spike);
    EXPECT_FALSE(spike);
    EXPECT_EQ(u, 200);
}

TEST(Neuron, ResetToZeroMode) {
    SnnLayer layer = if_layer();
    layer.reset = ResetMode::kZero;
    bool spike = false;
    const auto u = compute::update_neuron(200, 200, layer, spike);
    EXPECT_TRUE(spike);
    EXPECT_EQ(u, 0);
}

TEST(Neuron, LifLeaksTowardZero) {
    SnnLayer layer = if_layer();
    layer.neuron = NeuronKind::kLif;
    layer.leak_shift = 2;  // leak 1/4 per step
    bool spike = false;
    const auto u = compute::update_neuron(100, 0, layer, spike);
    EXPECT_FALSE(spike);
    EXPECT_EQ(u, 75);
}

TEST(Neuron, RateCodesClippedValue) {
    // Constant drive I per step, threshold theta: firing rate -> I/theta.
    const SnnLayer layer = if_layer();
    std::int16_t u = 128;
    int spikes = 0;
    const int steps = 1000;
    const std::int16_t drive = 64;  // I/theta = 0.25
    for (int t = 0; t < steps; ++t) {
        bool s = false;
        u = compute::update_neuron(u, drive, layer, s);
        spikes += s ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(spikes) / steps, 0.25, 0.01);
}

TEST(Neuron, NegativeDriveNeverFires) {
    const SnnLayer layer = if_layer();
    std::int16_t u = 128;
    for (int t = 0; t < 100; ++t) {
        bool s = false;
        u = compute::update_neuron(u, -50, layer, s);
        EXPECT_FALSE(s);
    }
    EXPECT_EQ(u, 128 - 100 * 50);  // integrates linearly downward
    for (int t = 0; t < 1000; ++t) {
        bool s = false;
        u = compute::update_neuron(u, -50, layer, s);
    }
    EXPECT_EQ(u, -32768);  // saturates, never wraps
}

// ---- Model validation ----

SnnModel tiny_conv_model() {
    SnnModel model;
    model.input_channels = 1;
    model.input_h = 4;
    model.input_w = 4;
    model.classes = 2;
    SnnLayer conv;
    conv.op = LayerOp::kConv;
    conv.label = "c";
    conv.input = -1;
    conv.main.in_channels = 1;
    conv.main.out_channels = 2;
    conv.main.kernel = 3;
    conv.main.stride = 1;
    conv.main.padding = 1;
    conv.main.weights.assign(2 * 1 * 3 * 3, 1);
    conv.main.gain.assign(2, 256);
    conv.main.bias.assign(2, 0);
    conv.out_channels = 2;
    conv.out_h = 4;
    conv.out_w = 4;
    conv.in_h = 4;
    conv.in_w = 4;
    model.layers.push_back(conv);
    SnnLayer fc;
    fc.op = LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 0;
    fc.spiking = false;
    fc.main.in_features = 32;
    fc.main.out_features = 2;
    fc.main.weights.assign(64, 1);
    fc.main.gain.assign(2, 256);
    fc.main.bias.assign(2, 0);
    fc.out_channels = 2;
    model.layers.push_back(fc);
    return model;
}

TEST(ModelValidate, AcceptsWellFormed) { EXPECT_NO_THROW(tiny_conv_model().validate()); }

TEST(ModelValidate, RejectsWeightSizeMismatch) {
    auto model = tiny_conv_model();
    model.layers[0].main.weights.pop_back();
    EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(ModelValidate, RejectsForwardReference) {
    auto model = tiny_conv_model();
    model.layers[0].input = 5;
    EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(ModelValidate, RejectsNonLinearReadout) {
    auto model = tiny_conv_model();
    model.layers[0].spiking = false;
    EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(ModelValidate, RejectsFcFeatureMismatch) {
    auto model = tiny_conv_model();
    model.layers[1].main.in_features = 16;
    model.layers[1].main.weights.assign(32, 1);
    EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(ModelValidate, RejectsOutOfRangeShifts) {
    // The fire-stage lane arithmetic relies on these bounds to keep
    // every int32 intermediate from overflowing.
    auto model = tiny_conv_model();
    model.layers[1].main.gain_shift = 31;  // linear branch
    EXPECT_THROW(model.validate(), std::invalid_argument);

    auto leaky = tiny_conv_model();
    leaky.layers[0].leak_shift = 33;
    EXPECT_THROW(leaky.validate(), std::invalid_argument);
}

TEST(ModelValidate, RejectsIdentitySkipSpatialMismatch) {
    // Identity skips alias the source's packed spike words, so the
    // whole CHW geometry must match, not just the channel count.
    auto model = tiny_conv_model();
    auto& conv = model.layers[0];
    conv.skip_src = -1;  // network input: 1ch, but 4x4 vs this 4x4...
    conv.skip_is_identity = true;
    ASSERT_EQ(conv.out_channels, 2);  // channel mismatch alone rejects
    EXPECT_THROW(model.validate(), std::invalid_argument);

    // Channel-matched but spatially mismatched source must also reject.
    auto spatial = tiny_conv_model();
    SnnLayer shrunk = spatial.layers[0];  // same 2 channels
    shrunk.label = "shrunk";
    shrunk.input = 0;
    shrunk.main.in_channels = 2;
    shrunk.main.weights.assign(static_cast<std::size_t>(2 * 2 * 9), 1);
    shrunk.main.stride = 2;
    shrunk.out_h = shrunk.out_w = 2;
    shrunk.in_h = shrunk.in_w = 4;
    shrunk.skip_src = 0;  // 2ch 4x4 source vs 2ch 2x2 output
    shrunk.skip_is_identity = true;
    spatial.layers.insert(spatial.layers.begin() + 1, shrunk);
    spatial.layers[2].input = 1;
    spatial.layers[2].main.in_features = 2 * 2 * 2;
    spatial.layers[2].main.weights.assign(static_cast<std::size_t>(2 * 2 * 2 * 2), 1);
    EXPECT_THROW(spatial.validate(), std::invalid_argument);
}

TEST(ModelOps, CountsSynapticOps) {
    const auto model = tiny_conv_model();
    // conv: 4*4 * 2 * 1 * 9 * 2 = 576; fc: 32*2*2 = 128.
    EXPECT_EQ(model.ops_per_timestep(), 576U + 128U);
}

// ---- ExitCriterion / ExitEvaluator margin-math edge cases ----

// std::span has no initializer_list constructor in C++20; materialize
// the readout row for the call.
ExitReason observe(ExitEvaluator& eval, std::initializer_list<std::int64_t> readout,
                   std::int64_t steps_done) {
    const std::vector<std::int64_t> row(readout);
    return eval.observe(row, steps_done);
}

TEST(ExitCriterion, ValidateRejectsMalformedFields) {
    EXPECT_NO_THROW((ExitCriterion{.margin = 10}).validate());
    EXPECT_NO_THROW(ExitCriterion{}.validate());  // disabled is fine
    EXPECT_THROW((ExitCriterion{.margin = -1}).validate(), std::invalid_argument);
    EXPECT_THROW((ExitCriterion{.margin = 10, .stable_checks = -1}).validate(),
                 std::invalid_argument);
    EXPECT_THROW((ExitCriterion{.margin = 10, .min_steps = 0}).validate(),
                 std::invalid_argument);
    EXPECT_THROW((ExitCriterion{.margin = 10, .hysteresis = 0}).validate(),
                 std::invalid_argument);
    EXPECT_THROW(
        (ExitCriterion{.margin = 10, .check_interval = 0}).validate(),
        std::invalid_argument);
}

TEST(ExitCriterion, EnabledAndEvaluationSchedule) {
    EXPECT_FALSE(ExitCriterion{}.enabled());
    EXPECT_TRUE((ExitCriterion{.margin = 1}).enabled());
    EXPECT_TRUE((ExitCriterion{.stable_checks = 2}).enabled());

    const ExitCriterion c{.margin = 1, .min_steps = 3, .check_interval = 2};
    EXPECT_FALSE(c.evaluates_at(1));
    EXPECT_FALSE(c.evaluates_at(2));
    EXPECT_TRUE(c.evaluates_at(3));
    EXPECT_FALSE(c.evaluates_at(4));
    EXPECT_TRUE(c.evaluates_at(5));
    EXPECT_EQ(c.next_eval_step(0), 3);
    EXPECT_EQ(c.next_eval_step(3), 5);  // strictly after the argument
    EXPECT_EQ(c.next_eval_step(4), 5);
}

TEST(ExitEvaluator, SingleClassModelNeverExits) {
    // Margin needs a runner-up; with fewer than two classes there is
    // none, so the evaluator must stay silent forever.
    const ExitCriterion c{.margin = 1, .stable_checks = 1};
    ExitEvaluator eval(c, {});
    for (std::int64_t s = 1; s <= 16; ++s) {
        EXPECT_EQ(observe(eval, {100 * s}, s), ExitReason::kNone) << "step " << s;
    }
    ExitEvaluator empty(c, {});
    EXPECT_EQ(observe(empty, {}, 1), ExitReason::kNone);
}

TEST(ExitEvaluator, AllZeroReadoutAtStepOneIsATieNotAnExit) {
    // Before any spikes reach the readout every class sits at zero —
    // an exact top-2 tie, which must not count as margin or stability.
    const ExitCriterion c{.margin = 1, .stable_checks = 1};
    ExitEvaluator eval(c, {});
    EXPECT_EQ(observe(eval, {0, 0, 0, 0}, 1), ExitReason::kNone);
    EXPECT_EQ(observe(eval, {0, 0, 0, 0}, 2), ExitReason::kNone);
    // First decisive step fires margin (and would satisfy stability).
    EXPECT_EQ(observe(eval, {5, 0, 0, 0}, 3), ExitReason::kMargin);
}

TEST(ExitEvaluator, ExactTopTwoTieResetsBothStreaks) {
    // Hysteresis 2: one margin hit, then a tie, then another hit — the
    // tie must clear the streak so the second hit starts from scratch.
    const ExitCriterion c{.margin = 5, .hysteresis = 2};
    ExitEvaluator eval(c, {});
    EXPECT_EQ(observe(eval, {10, 0}, 1), ExitReason::kNone);   // streak 1
    EXPECT_EQ(observe(eval, {10, 10}, 2), ExitReason::kNone);  // tie: reset
    EXPECT_EQ(observe(eval, {20, 0}, 3), ExitReason::kNone);   // streak 1 again
    EXPECT_EQ(observe(eval, {30, 0}, 4), ExitReason::kMargin);

    // Stability streaks reset the same way — and a tie also clears the
    // remembered top class, so the post-tie observation can't chain
    // with the pre-tie one.
    const ExitCriterion s{.stable_checks = 2};
    ExitEvaluator stable(s, {});
    EXPECT_EQ(observe(stable, {3, 1}, 1), ExitReason::kNone);  // top=0, streak 1
    EXPECT_EQ(observe(stable, {4, 4}, 2), ExitReason::kNone);  // tie: reset
    EXPECT_EQ(observe(stable, {5, 4}, 3), ExitReason::kNone);  // top=0, streak 1
    EXPECT_EQ(observe(stable, {6, 4}, 4), ExitReason::kStable);
}

TEST(ExitEvaluator, MarginUsesFirstIndexWinsAndBaselineDelta) {
    // The evaluator judges the delta against its baseline (session
    // window semantics): a huge carried lead contributes nothing.
    const ExitCriterion c{.margin = 5};
    const std::vector<std::int64_t> carried = {1000, 0, 0};
    ExitEvaluator eval(c, carried);
    EXPECT_EQ(observe(eval, {1000, 0, 0}, 1), ExitReason::kNone);  // delta all-zero tie
    EXPECT_EQ(observe(eval, {1001, 0, 0}, 2), ExitReason::kNone);  // delta margin 1
    EXPECT_EQ(observe(eval, {1000, 6, 0}, 3), ExitReason::kMargin);  // class 1 leads by 6
}

TEST(ExitEvaluator, MinStepsFloorAndHysteresisWindow) {
    const ExitCriterion c{.margin = 1, .min_steps = 3, .hysteresis = 2};
    ExitEvaluator eval(c, {});
    // Decisive from the start, but steps 1-2 are below the floor and
    // must not even feed the streak.
    EXPECT_EQ(observe(eval, {9, 0}, 1), ExitReason::kNone);
    EXPECT_EQ(observe(eval, {9, 0}, 2), ExitReason::kNone);
    EXPECT_EQ(observe(eval, {9, 0}, 3), ExitReason::kNone);  // streak 1
    EXPECT_EQ(observe(eval, {9, 0}, 4), ExitReason::kMargin);  // streak 2
}

TEST(ExitEvaluator, MarginFiresBeforeStabilityWhenBothQualify) {
    const ExitCriterion c{.margin = 1, .stable_checks = 1};
    ExitEvaluator eval(c, {});
    EXPECT_EQ(observe(eval, {7, 0}, 1), ExitReason::kMargin);
}

}  // namespace
}  // namespace sia::snn
