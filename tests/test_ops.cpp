// Tensor kernel tests: matmul variants, im2col convolution (against a
// naive reference), pooling, and numerical gradient checks on the
// backward passes.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace sia::tensor {
namespace {

Tensor random_tensor(Shape shape, util::Rng& rng) {
    Tensor t(shape);
    t.randn_(rng, 1.0F);
    return t;
}

/// Naive direct convolution used as the reference implementation.
Tensor conv_reference(const Tensor& input, const Tensor& weight, const ConvGeometry& g) {
    const std::int64_t n = input.dim(0);
    const std::int64_t ih = input.dim(2);
    const std::int64_t iw = input.dim(3);
    const std::int64_t oh = g.out_size(ih);
    const std::int64_t ow = g.out_size(iw);
    Tensor out(Shape{n, g.out_channels, oh, ow});
    for (std::int64_t s = 0; s < n; ++s) {
        for (std::int64_t oc = 0; oc < g.out_channels; ++oc) {
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t x = 0; x < ow; ++x) {
                    double acc = 0.0;
                    for (std::int64_t ic = 0; ic < g.in_channels; ++ic) {
                        for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
                            for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
                                const std::int64_t iy = y * g.stride + ky - g.padding;
                                const std::int64_t ix = x * g.stride + kx - g.padding;
                                if (iy < 0 || iy >= ih || ix < 0 || ix >= iw) continue;
                                acc += static_cast<double>(input.at(s, ic, iy, ix)) *
                                       weight.at(oc, ic, ky, kx);
                            }
                        }
                    }
                    out.at(s, oc, y, x) = static_cast<float>(acc);
                }
            }
        }
    }
    return out;
}

TEST(Matmul, SmallKnown) {
    const Tensor a(Shape{2, 2}, {1, 2, 3, 4});
    const Tensor b(Shape{2, 2}, {5, 6, 7, 8});
    Tensor c(Shape{2, 2});
    matmul(a, b, c);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19.0F);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22.0F);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43.0F);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50.0F);
}

TEST(Matmul, VariantsAgree) {
    util::Rng rng(1);
    const Tensor a = random_tensor(Shape{5, 7}, rng);
    const Tensor b = random_tensor(Shape{7, 4}, rng);
    Tensor ref(Shape{5, 4});
    matmul(a, b, ref);

    // a^T stored: [7,5]
    Tensor a_t(Shape{7, 5});
    for (std::int64_t i = 0; i < 5; ++i) {
        for (std::int64_t j = 0; j < 7; ++j) a_t.at(j, i) = a.at(i, j);
    }
    Tensor out_tn(Shape{5, 4});
    matmul_tn(a_t, b, out_tn);
    // b^T stored: [4,7]
    Tensor b_t(Shape{4, 7});
    for (std::int64_t i = 0; i < 7; ++i) {
        for (std::int64_t j = 0; j < 4; ++j) b_t.at(j, i) = b.at(i, j);
    }
    Tensor out_nt(Shape{5, 4});
    matmul_nt(a, b_t, out_nt);

    for (std::int64_t i = 0; i < ref.numel(); ++i) {
        EXPECT_NEAR(out_tn.flat(i), ref.flat(i), 1e-4F);
        EXPECT_NEAR(out_nt.flat(i), ref.flat(i), 1e-4F);
    }
}

TEST(Matmul, ShapeMismatchThrows) {
    const Tensor a(Shape{2, 3});
    const Tensor b(Shape{4, 2});
    Tensor c(Shape{2, 2});
    EXPECT_THROW(matmul(a, b, c), std::invalid_argument);
}

struct ConvCase {
    std::int64_t ic, oc, k, stride, pad, size;
};

class ConvForward : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvForward, MatchesNaiveReference) {
    const ConvCase c = GetParam();
    util::Rng rng(11);
    const ConvGeometry g{c.ic, c.oc, c.k, c.stride, c.pad};
    const Tensor input = random_tensor(Shape{2, c.ic, c.size, c.size}, rng);
    const Tensor weight = random_tensor(Shape{c.oc, c.ic, c.k, c.k}, rng);
    const std::int64_t oh = g.out_size(c.size);
    Tensor out(Shape{2, c.oc, oh, oh});
    conv2d_forward(input, weight, Tensor{}, g, out);
    const Tensor ref = conv_reference(input, weight, g);
    ASSERT_EQ(out.numel(), ref.numel());
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        EXPECT_NEAR(out.flat(i), ref.flat(i), 1e-3F) << "i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvForward,
    ::testing::Values(ConvCase{1, 1, 3, 1, 1, 6},   // minimal
                      ConvCase{3, 8, 3, 1, 1, 8},   // typical 3x3
                      ConvCase{4, 6, 3, 2, 1, 8},   // stride 2 (VGG downsample)
                      ConvCase{4, 6, 1, 1, 0, 5},   // 1x1 (ResNet downsample skip)
                      ConvCase{2, 4, 5, 1, 2, 9},   // 5x5 (Table II)
                      ConvCase{2, 4, 7, 1, 3, 9},   // 7x7 (Table II)
                      ConvCase{1, 2, 11, 1, 5, 12}  // 11x11 (Table II)
                      ));

TEST(ConvBackward, NumericalGradientInput) {
    util::Rng rng(2);
    const ConvGeometry g{2, 3, 3, 1, 1};
    Tensor input = random_tensor(Shape{1, 2, 5, 5}, rng);
    const Tensor weight = random_tensor(Shape{3, 2, 3, 3}, rng);
    const std::int64_t oh = g.out_size(5);
    Tensor out(Shape{1, 3, oh, oh});

    // Loss = sum(out). dL/dout = 1.
    Tensor grad_out(out.shape());
    grad_out.fill(1.0F);
    Tensor grad_in(input.shape());
    Tensor grad_w(weight.shape());
    Tensor no_bias;
    conv2d_backward(input, weight, grad_out, g, grad_in, grad_w, no_bias);

    const float eps = 1e-2F;
    for (const std::int64_t idx : {0L, 7L, 24L, 49L}) {
        const float orig = input.flat(idx);
        input.flat(idx) = orig + eps;
        conv2d_forward(input, weight, Tensor{}, g, out);
        const float lp = out.sum();
        input.flat(idx) = orig - eps;
        conv2d_forward(input, weight, Tensor{}, g, out);
        const float lm = out.sum();
        input.flat(idx) = orig;
        const float numeric = (lp - lm) / (2 * eps);
        EXPECT_NEAR(grad_in.flat(idx), numeric, 5e-2F) << "idx=" << idx;
    }
}

TEST(ConvBackward, NumericalGradientWeight) {
    util::Rng rng(3);
    const ConvGeometry g{2, 2, 3, 1, 1};
    const Tensor input = random_tensor(Shape{2, 2, 4, 4}, rng);
    Tensor weight = random_tensor(Shape{2, 2, 3, 3}, rng);
    Tensor out(Shape{2, 2, 4, 4});
    Tensor grad_out(out.shape());
    grad_out.fill(1.0F);
    Tensor grad_in(input.shape());
    Tensor grad_w(weight.shape());
    Tensor no_bias;
    conv2d_backward(input, weight, grad_out, g, grad_in, grad_w, no_bias);

    const float eps = 1e-2F;
    for (const std::int64_t idx : {0L, 5L, 17L, 35L}) {
        const float orig = weight.flat(idx);
        weight.flat(idx) = orig + eps;
        conv2d_forward(input, weight, Tensor{}, g, out);
        const float lp = out.sum();
        weight.flat(idx) = orig - eps;
        conv2d_forward(input, weight, Tensor{}, g, out);
        const float lm = out.sum();
        weight.flat(idx) = orig;
        EXPECT_NEAR(grad_w.flat(idx), (lp - lm) / (2 * eps), 5e-2F) << "idx=" << idx;
    }
}

TEST(AvgPool, ForwardBackward) {
    Tensor in(Shape{1, 1, 4, 4});
    for (std::int64_t i = 0; i < 16; ++i) in.flat(i) = static_cast<float>(i);
    Tensor out(Shape{1, 1, 2, 2});
    avgpool2d_forward(in, 2, out);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), (0 + 1 + 4 + 5) / 4.0F);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), (10 + 11 + 14 + 15) / 4.0F);

    Tensor gout(out.shape());
    gout.fill(4.0F);
    Tensor gin(in.shape());
    avgpool2d_backward(gout, 2, gin);
    for (std::int64_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(gin.flat(i), 1.0F);
}

TEST(MaxPool, ForwardBackwardRouting) {
    Tensor in(Shape{1, 1, 4, 4});
    for (std::int64_t i = 0; i < 16; ++i) in.flat(i) = static_cast<float>(i);
    Tensor out(Shape{1, 1, 2, 2});
    std::vector<std::int64_t> argmax;
    maxpool2d_forward(in, 2, out, argmax);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 5.0F);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 15.0F);

    Tensor gout(out.shape());
    gout.fill(1.0F);
    Tensor gin(in.shape());
    maxpool2d_backward(gout, argmax, gin);
    EXPECT_FLOAT_EQ(gin.flat(5), 1.0F);
    EXPECT_FLOAT_EQ(gin.flat(15), 1.0F);
    EXPECT_FLOAT_EQ(gin.flat(0), 0.0F);
}

TEST(Linear, ForwardAndNumericalGradient) {
    util::Rng rng(4);
    const Tensor input = random_tensor(Shape{3, 5}, rng);
    Tensor weight = random_tensor(Shape{2, 5}, rng);
    const Tensor bias = random_tensor(Shape{2}, rng);
    Tensor out(Shape{3, 2});
    linear_forward(input, weight, bias, out);
    // Check one output element by hand.
    double acc = bias.flat(1);
    for (std::int64_t d = 0; d < 5; ++d) acc += double(input.at(2, d)) * weight.at(1, d);
    EXPECT_NEAR(out.at(2, 1), acc, 1e-4);

    Tensor grad_out(out.shape());
    grad_out.fill(1.0F);
    Tensor grad_in(input.shape());
    Tensor grad_w(weight.shape());
    Tensor grad_b(bias.shape());
    linear_backward(input, weight, grad_out, grad_in, grad_w, grad_b);
    const float eps = 1e-2F;
    const float orig = weight.flat(3);
    weight.flat(3) = orig + eps;
    linear_forward(input, weight, bias, out);
    const float lp = out.sum();
    weight.flat(3) = orig - eps;
    linear_forward(input, weight, bias, out);
    const float lm = out.sum();
    weight.flat(3) = orig;
    EXPECT_NEAR(grad_w.flat(3), (lp - lm) / (2 * eps), 5e-2F);
    // Bias gradient: dL/db_f = batch size with unit grad_out.
    EXPECT_FLOAT_EQ(grad_b.flat(0), 3.0F);
}

TEST(ConvGeometry, OutputSizes) {
    const ConvGeometry s1{1, 1, 3, 1, 1};
    EXPECT_EQ(s1.out_size(32), 32);
    const ConvGeometry s2{1, 1, 3, 2, 1};
    EXPECT_EQ(s2.out_size(32), 16);
    const ConvGeometry k1{1, 1, 1, 2, 0};
    EXPECT_EQ(k1.out_size(32), 16);
}

}  // namespace
}  // namespace sia::tensor
