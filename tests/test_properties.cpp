// Parameterized property sweeps across the co-verification surface:
// for a grid of geometries, neuron configs and seeds, the cycle-accurate
// simulator must match the functional engine bit-exactly, and core
// integer invariants must hold under random stimulus.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "core/deploy.hpp"
#include "snn/compute.hpp"
#include "snn/encoding.hpp"
#include "snn/engine.hpp"
#include "util/fixed_point.hpp"

namespace sia {
namespace {

// ---- random SnnModel generator ----

struct ModelSpec {
    std::int64_t channels;     // input channels
    std::int64_t size;         // input spatial size
    std::int64_t depth;        // conv layers
    std::int64_t width;        // conv output channels
    std::int64_t kernel;
    bool residual;             // add an identity skip on even layers
    snn::NeuronKind neuron;
    std::uint64_t seed;
};

snn::Branch random_conv_branch(std::int64_t ic, std::int64_t oc, std::int64_t k,
                               util::Rng& rng) {
    snn::Branch b;
    b.in_channels = ic;
    b.out_channels = oc;
    b.kernel = k;
    b.stride = 1;
    b.padding = k / 2;
    b.weights.resize(static_cast<std::size_t>(ic * oc * k * k));
    for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
    b.gain.resize(static_cast<std::size_t>(oc));
    b.bias.resize(static_cast<std::size_t>(oc));
    for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
    for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
    return b;
}

snn::SnnModel random_model(const ModelSpec& spec) {
    util::Rng rng(spec.seed);
    snn::SnnModel model;
    model.input_channels = spec.channels;
    model.input_h = spec.size;
    model.input_w = spec.size;

    std::int64_t in_c = spec.channels;
    for (std::int64_t d = 0; d < spec.depth; ++d) {
        snn::SnnLayer layer;
        layer.op = snn::LayerOp::kConv;
        layer.label = "conv" + std::to_string(d);
        layer.input = static_cast<int>(d) - 1;
        layer.main = random_conv_branch(in_c, spec.width, spec.kernel, rng);
        layer.neuron = spec.neuron;
        layer.out_channels = spec.width;
        layer.out_h = spec.size;
        layer.out_w = spec.size;
        layer.in_h = spec.size;
        layer.in_w = spec.size;
        if (spec.residual && d >= 2 && d % 2 == 0) {
            layer.skip_src = static_cast<int>(d) - 2;  // same width: identity OK
            layer.skip_is_identity = true;
            layer.identity_skip.charge =
                static_cast<std::int16_t>(rng.integer(100, 400));
        }
        model.layers.push_back(std::move(layer));
        in_c = spec.width;
    }

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = static_cast<int>(spec.depth) - 1;
    fc.spiking = false;
    fc.main.in_features = spec.width * spec.size * spec.size;
    fc.main.out_features = 4;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 4));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(4, 256);
    fc.main.bias.assign(4, 0);
    fc.out_channels = 4;
    model.layers.push_back(std::move(fc));
    model.classes = 4;
    model.validate();
    return model;
}

snn::SpikeTrain random_train(const snn::SnnModel& model, std::int64_t timesteps,
                             std::uint64_t seed, double rate) {
    util::Rng rng(seed);
    snn::SpikeTrain train(static_cast<std::size_t>(timesteps),
                          snn::SpikeMap(model.input_channels, model.input_h,
                                        model.input_w));
    for (auto& frame : train) {
        for (std::int64_t i = 0; i < frame.size(); ++i) {
            frame.set_flat(i, rng.bernoulli(rate));
        }
    }
    return train;
}

class BitExactSweep : public ::testing::TestWithParam<ModelSpec> {};

TEST_P(BitExactSweep, SimulatorMatchesFunctionalEngine) {
    const ModelSpec spec = GetParam();
    const auto model = random_model(spec);
    const auto train = random_train(model, 5, spec.seed + 1, 0.2);
    const core::DeployReport report = core::Deployer().deploy(model, train);
    EXPECT_TRUE(report.bit_exact) << report.mismatch;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BitExactSweep,
    ::testing::Values(
        ModelSpec{1, 6, 1, 4, 3, false, snn::NeuronKind::kIf, 1},
        ModelSpec{3, 8, 2, 8, 3, false, snn::NeuronKind::kIf, 2},
        ModelSpec{2, 8, 3, 6, 1, false, snn::NeuronKind::kIf, 3},     // 1x1 kernels
        ModelSpec{2, 9, 2, 5, 5, false, snn::NeuronKind::kIf, 4},     // 5x5 kernels
        ModelSpec{3, 8, 4, 8, 3, true, snn::NeuronKind::kIf, 5},      // residual
        ModelSpec{3, 8, 2, 8, 3, false, snn::NeuronKind::kLif, 6},    // LIF
        ModelSpec{1, 12, 3, 10, 3, true, snn::NeuronKind::kLif, 7},   // LIF + residual
        ModelSpec{4, 6, 2, 70, 3, false, snn::NeuronKind::kIf, 8}));  // >64 OC (tiling)

// ---- integer invariants under random stimulus ----

TEST(Invariants, SatArithmeticNeverWraps) {
    util::Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const auto a = static_cast<std::int16_t>(rng.integer(-32768, 32767));
        const auto b = static_cast<std::int16_t>(rng.integer(-32768, 32767));
        const std::int64_t wide = static_cast<std::int64_t>(a) + b;
        const std::int16_t s = util::sat_add16(a, b);
        if (wide > 32767) {
            EXPECT_EQ(s, 32767);
        } else if (wide < -32768) {
            EXPECT_EQ(s, -32768);
        } else {
            EXPECT_EQ(s, static_cast<std::int16_t>(wide));
        }
    }
}

TEST(Invariants, FxpMulShiftWithinHalfUlp) {
    util::Rng rng(10);
    for (int i = 0; i < 10000; ++i) {
        const auto a = static_cast<std::int16_t>(rng.integer(-2000, 2000));
        const auto b = static_cast<std::int16_t>(rng.integer(-2000, 2000));
        const int shift = static_cast<int>(rng.integer(1, 14));
        const double exact =
            static_cast<double>(a) * b / static_cast<double>(std::int64_t{1} << shift);
        const std::int16_t got = util::fxp_mul_shift(a, b, shift);
        if (exact < 32767.0 && exact > -32768.0) {
            EXPECT_LE(std::abs(static_cast<double>(got) - exact), 0.5 + 1e-9)
                << a << "*" << b << ">>" << shift;
        }
    }
}

TEST(Invariants, NeuronPotentialBoundedAfterFire) {
    // With reset-by-subtraction and current <= theta, the post-fire
    // potential stays below theta (no runaway accumulation).
    snn::SnnLayer layer;
    layer.threshold = 256;
    util::Rng rng(11);
    std::int16_t u = 128;
    for (int i = 0; i < 5000; ++i) {
        const auto current = static_cast<std::int16_t>(rng.integer(-256, 256));
        bool spike = false;
        u = snn::compute::update_neuron(u, current, layer, spike);
        if (spike) {
            EXPECT_LT(u, layer.threshold);
        }
        EXPECT_GE(u, -32768);
    }
}

TEST(Invariants, SpikeCountsConservedAcrossEngines) {
    // Total spikes per layer reported by RunResult equal the sum of
    // per-step SpikeMap counts (no double counting).
    const auto model = random_model({3, 8, 2, 8, 3, false, snn::NeuronKind::kIf, 12});
    const auto train = random_train(model, 4, 13, 0.25);
    snn::FunctionalEngine engine(model);
    engine.reset();
    std::vector<std::int64_t> manual(model.layers.size(), 0);
    for (const auto& frame : train) {
        engine.step(frame);
        for (std::size_t l = 0; l < model.layers.size(); ++l) {
            manual[l] += engine.layer_spikes(l).count();
        }
    }
    for (std::size_t l = 0; l < model.layers.size(); ++l) {
        EXPECT_EQ(engine.spike_count(l), manual[l]) << "layer " << l;
    }
}

TEST(Invariants, PoissonEncodingInvariantToBatchPositionAndThreads) {
    // The determinism precondition core::BatchRunner relies on: with the
    // same util::mix_seed-derived per-item seed (the very mixer item_rng
    // uses), snn::encode_poisson yields the identical train no matter
    // where the item sits in a batch, what other encodes ran before it on
    // the same thread, or which of several threads performs it.
    constexpr std::uint64_t kBatchSeed = 2024;
    constexpr std::size_t kItems = 8;
    constexpr std::int64_t kTimesteps = 6;

    std::vector<tensor::Tensor> images;
    util::Rng img_rng(15);
    for (std::size_t i = 0; i < kItems; ++i) {
        tensor::Tensor img(tensor::Shape{1, 2, 5, 5});
        for (std::int64_t j = 0; j < img.numel(); ++j) {
            img.flat(j) = img_rng.uniform(0.0F, 1.0F);
        }
        images.push_back(std::move(img));
    }
    const auto encode_item = [&](std::size_t item) {
        util::Rng rng(util::mix_seed(kBatchSeed, item));
        return snn::encode_poisson(images[item], kTimesteps, rng);
    };
    const auto same_train = [](const snn::SpikeTrain& a, const snn::SpikeTrain& b) {
        if (a.size() != b.size()) return false;
        for (std::size_t t = 0; t < a.size(); ++t) {
            if (a[t].raw() != b[t].raw()) return false;
        }
        return true;
    };

    // Reference: items encoded in order on one thread.
    std::vector<snn::SpikeTrain> reference;
    for (std::size_t i = 0; i < kItems; ++i) reference.push_back(encode_item(i));

    // Batch-position invariance: reverse order, with unrelated encodes
    // interleaved between items (a worker that processed other items).
    for (std::size_t i = kItems; i-- > 0;) {
        util::Rng noise(999 + i);
        (void)snn::encode_poisson(images[0], kTimesteps, noise);
        EXPECT_TRUE(same_train(encode_item(i), reference[i])) << "item " << i;
    }

    // Thread invariance: items scattered over threads, each thread
    // encoding its share in its own order.
    std::vector<snn::SpikeTrain> threaded(kItems);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 3; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t i = t; i < kItems; i += 3) threaded[i] = encode_item(i);
        });
    }
    for (auto& th : threads) th.join();
    for (std::size_t i = 0; i < kItems; ++i) {
        EXPECT_TRUE(same_train(threaded[i], reference[i])) << "item " << i;
    }

    // Distinct items draw from decorrelated streams: trains must differ
    // somewhere (all-equal would mean the position is ignored).
    bool any_diff = false;
    for (std::size_t i = 1; i < kItems && !any_diff; ++i) {
        any_diff = !same_train(reference[0], reference[i]);
    }
    EXPECT_TRUE(any_diff);
}

TEST(Invariants, EncoderPrefixConsistency) {
    // Thermometer property: the first t steps of a T-step encoding carry
    // floor-consistent prefixes — count over prefix differs from the
    // exact proportional share by at most 1.
    util::Rng rng(14);
    tensor::Tensor img(tensor::Shape{1, 1, 4, 4});
    for (std::int64_t i = 0; i < img.numel(); ++i) img.flat(i) = rng.uniform(0.0F, 1.0F);
    const auto train = snn::encode_thermometer(img, 16);
    for (std::int64_t i = 0; i < img.numel(); ++i) {
        std::int64_t total = 0;
        for (const auto& f : train) total += f.get_flat(i) ? 1 : 0;
        std::int64_t prefix = 0;
        for (std::int64_t t = 0; t < 16; ++t) {
            prefix += train[static_cast<std::size_t>(t)].get_flat(i) ? 1 : 0;
            const double share = static_cast<double>(total) * (t + 1) / 16.0;
            EXPECT_LE(std::abs(static_cast<double>(prefix) - share), 1.0 + 1e-9);
        }
    }
}

}  // namespace
}  // namespace sia
