// Equivalence of the portable (plain-struct) SIMD fallback with the
// scalar reference fire path.
//
// snn/simd.hpp has two spellings of the 8-lane helpers: GNU vector
// extensions (what every GCC/Clang build uses) and a portable struct
// fallback for other compilers. This binary is compiled with
// SIA_FORCE_SCALAR_SIMD, so its FunctionalEngine's FirePath::kVector
// runs the fused kernels through the FALLBACK lanes — asserting them
// bit-identical to the scalar loop gives the fallback real execution
// coverage instead of compile-only coverage.
//
// Deliberately NOT linked against the sia library: the library's
// inline simd functions are the native spelling, and mixing the two
// definitions in one binary would be an ODR violation (the linker
// would silently pick one). The CMake target compiles the needed snn
// translation units directly with the macro set.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "snn/engine.hpp"
#include "snn/model.hpp"
#include "snn/spike.hpp"
#include "util/rng.hpp"

#ifndef SIA_FORCE_SCALAR_SIMD
#error "this test must be compiled with SIA_FORCE_SCALAR_SIMD"
#endif
#ifdef SIA_SIMD_NATIVE
#error "the native SIMD spelling leaked into the fallback test"
#endif

namespace sia::snn {
namespace {

Branch conv_branch(std::int64_t ic, std::int64_t oc, std::int64_t kernel,
                   std::int64_t stride, std::int64_t padding, util::Rng& rng) {
    Branch b;
    b.in_channels = ic;
    b.out_channels = oc;
    b.kernel = kernel;
    b.stride = stride;
    b.padding = padding;
    b.weights.resize(static_cast<std::size_t>(oc * ic * kernel * kernel));
    for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-128, 127));
    b.gain.assign(static_cast<std::size_t>(oc), 0);
    b.bias.assign(static_cast<std::size_t>(oc), 0);
    for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
    for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
    return b;
}

/// Identity skip on a word-aligned plane, conv skip + tails on an odd
/// one — the same routing axes as the main dispatch matrix, compacted.
SnnModel fallback_model(NeuronKind neuron, ResetMode reset, util::Rng& rng) {
    SnnModel model;
    model.input_channels = 3;
    model.input_h = 8;
    model.input_w = 8;
    model.classes = 3;

    const auto tune = [&](SnnLayer& l) {
        l.neuron = neuron;
        l.reset = reset;
        l.leak_shift = 3;
    };

    SnnLayer stem;
    stem.op = LayerOp::kConv;
    stem.label = "stem";
    stem.input = -1;
    stem.main = conv_branch(3, 4, 3, 1, 1, rng);
    stem.out_channels = 4;
    stem.out_h = stem.out_w = 8;
    stem.in_h = stem.in_w = 8;
    tune(stem);
    model.layers.push_back(stem);

    SnnLayer res;
    res.op = LayerOp::kConv;
    res.label = "res";
    res.input = 0;
    res.main = conv_branch(4, 4, 3, 1, 1, rng);
    res.skip_src = 0;
    res.skip_is_identity = true;
    res.identity_skip.charge = 120;
    res.out_channels = 4;
    res.out_h = res.out_w = 8;
    res.in_h = res.in_w = 8;
    tune(res);
    model.layers.push_back(res);

    SnnLayer down;
    down.op = LayerOp::kConv;
    down.label = "down";
    down.input = 1;
    down.main = conv_branch(4, 5, 3, 2, 1, rng);
    down.skip_src = 1;
    down.skip_is_identity = false;
    down.skip = conv_branch(4, 5, 1, 2, 0, rng);
    down.out_channels = 5;  // 5 * 4 * 4 = 80 neurons: one word + tail
    down.out_h = down.out_w = 4;
    down.in_h = down.in_w = 8;
    tune(down);
    model.layers.push_back(down);

    SnnLayer readout;
    readout.op = LayerOp::kLinear;
    readout.label = "readout";
    readout.input = 2;
    readout.spiking = false;
    readout.main.in_features = 5 * 4 * 4;
    readout.main.out_features = 3;
    readout.main.weights.resize(static_cast<std::size_t>(5 * 4 * 4 * 3));
    for (auto& w : readout.main.weights) {
        w = static_cast<std::int8_t>(rng.integer(-128, 127));
    }
    readout.main.gain.assign(3, 256);
    readout.main.bias.assign(3, 0);
    readout.out_channels = 3;
    model.layers.push_back(readout);
    return model;
}

TEST(SimdFallback, VectorFireMatchesScalarFire) {
    util::Rng rng(808);
    for (const NeuronKind neuron : {NeuronKind::kIf, NeuronKind::kLif}) {
        for (const ResetMode reset : {ResetMode::kSubtract, ResetMode::kZero}) {
            const SnnModel model = fallback_model(neuron, reset, rng);
            for (const double density : {0.0, 0.05, 0.5, 1.0}) {
                FunctionalEngine vector_engine(model, {});
                FunctionalEngine scalar_engine(model, {.fire = FirePath::kScalar});
                for (int t = 0; t < 6; ++t) {
                    SpikeMap frame(model.input_channels, model.input_h, model.input_w);
                    for (std::int64_t j = 0; j < frame.size(); ++j) {
                        frame.set_flat(j, rng.bernoulli(density));
                    }
                    vector_engine.step(frame);
                    scalar_engine.step(frame);
                    for (std::size_t l = 0; l < model.layers.size(); ++l) {
                        ASSERT_TRUE(vector_engine.layer_spikes(l) ==
                                    scalar_engine.layer_spikes(l))
                            << "density=" << density << " t=" << t << " layer=" << l;
                        const auto mv = vector_engine.membrane(l);
                        const auto ms = scalar_engine.membrane(l);
                        ASSERT_TRUE(std::equal(mv.begin(), mv.end(), ms.begin(),
                                               ms.end()))
                            << "density=" << density << " t=" << t << " layer=" << l;
                    }
                    ASSERT_EQ(vector_engine.readout(), scalar_engine.readout())
                        << "density=" << density << " t=" << t;
                }
            }
        }
    }
}

}  // namespace
}  // namespace sia::snn
