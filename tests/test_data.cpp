// Dataset tests: synthetic generator, normalisation, augmentation,
// event streams, CIFAR loader behaviour without data files.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/augment.hpp"
#include "data/cifar.hpp"
#include "data/events.hpp"
#include "data/synthetic.hpp"

namespace sia::data {
namespace {

TEST(Synthetic, ShapesAndLabels) {
    SyntheticConfig cfg;
    cfg.classes = 5;
    cfg.train_per_class = 4;
    cfg.test_per_class = 2;
    const auto tt = make_synthetic(cfg);
    EXPECT_EQ(tt.train.size(), 20);
    EXPECT_EQ(tt.test.size(), 10);
    EXPECT_EQ(tt.train.images.shape(), (tensor::Shape{20, 3, 32, 32}));
    for (const auto l : tt.train.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, 5);
    }
}

TEST(Synthetic, DeterministicAcrossCalls) {
    SyntheticConfig cfg;
    cfg.train_per_class = 2;
    cfg.test_per_class = 1;
    const auto a = make_synthetic(cfg);
    const auto b = make_synthetic(cfg);
    for (std::int64_t i = 0; i < a.train.images.numel(); ++i) {
        ASSERT_EQ(a.train.images.flat(i), b.train.images.flat(i));
    }
}

TEST(Synthetic, SeedChangesData) {
    SyntheticConfig a;
    a.train_per_class = 2;
    SyntheticConfig b = a;
    b.seed = a.seed + 1;
    const auto da = make_synthetic(a);
    const auto db = make_synthetic(b);
    bool any_diff = false;
    for (std::int64_t i = 0; i < da.train.images.numel() && !any_diff; ++i) {
        any_diff = da.train.images.flat(i) != db.train.images.flat(i);
    }
    EXPECT_TRUE(any_diff);
}

TEST(Synthetic, NormalisedToUnitRange) {
    SyntheticConfig cfg;
    cfg.train_per_class = 4;
    const auto tt = make_synthetic(cfg);
    for (std::int64_t i = 0; i < tt.train.images.numel(); ++i) {
        ASSERT_GE(tt.train.images.flat(i), 0.0F);
        ASSERT_LE(tt.train.images.flat(i), 1.0F);
    }
    for (std::int64_t i = 0; i < tt.test.images.numel(); ++i) {
        ASSERT_GE(tt.test.images.flat(i), 0.0F);
        ASSERT_LE(tt.test.images.flat(i), 1.0F);
    }
}

TEST(Synthetic, InterleavedPrefixIsBalanced) {
    SyntheticConfig cfg;
    cfg.classes = 10;
    cfg.train_per_class = 5;
    const auto tt = make_synthetic(cfg);
    const auto prefix = tt.train.take(10);
    std::vector<int> count(10, 0);
    for (const auto l : prefix.labels) ++count[static_cast<std::size_t>(l)];
    for (const int c : count) EXPECT_EQ(c, 1);
}

TEST(Dataset, SampleExtraction) {
    SyntheticConfig cfg;
    cfg.train_per_class = 2;
    const auto tt = make_synthetic(cfg);
    const auto s = tt.train.sample(3);
    EXPECT_EQ(s.shape(), (tensor::Shape{1, 3, 32, 32}));
    for (std::int64_t i = 0; i < s.numel(); ++i) {
        ASSERT_EQ(s.flat(i), tt.train.images.flat(3 * s.numel() + i));
    }
}

TEST(Augment, AppendsCopiesAndKeepsLabels) {
    SyntheticConfig cfg;
    cfg.classes = 3;
    cfg.train_per_class = 2;
    const auto tt = make_synthetic(cfg);
    AugmentConfig acfg;
    acfg.copies = 2;
    const Dataset aug = augment(tt.train, acfg);
    EXPECT_EQ(aug.size(), tt.train.size() * 3);
    for (std::int64_t i = 0; i < tt.train.size(); ++i) {
        EXPECT_EQ(aug.labels[static_cast<std::size_t>(i)],
                  tt.train.labels[static_cast<std::size_t>(i)]);
        EXPECT_EQ(aug.labels[static_cast<std::size_t>(tt.train.size() + i)],
                  tt.train.labels[static_cast<std::size_t>(i)]);
    }
    // Originals preserved verbatim.
    for (std::int64_t i = 0; i < tt.train.images.numel(); ++i) {
        ASSERT_EQ(aug.images.flat(i), tt.train.images.flat(i));
    }
}

TEST(Events, SceneGeneratesSortedEvents) {
    EventSceneConfig cfg;
    cfg.timesteps = 6;
    const auto events = make_event_scene(cfg);
    EXPECT_FALSE(events.empty());
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LE(events[i - 1].t, events[i].t);
    }
    for (const auto& e : events) {
        EXPECT_GE(e.x, 0);
        EXPECT_LT(e.x, cfg.size);
        EXPECT_GE(e.t, 0);
        EXPECT_LT(e.t, cfg.timesteps);
    }
}

TEST(Events, FramesRasterisation) {
    std::vector<Event> events = {{1, 2, 0, true}, {3, 4, 1, false}, {0, 0, 5, true}};
    const auto frames = events_to_frames(events, 8, 4);  // t=5 dropped
    EXPECT_EQ(frames.shape(), (tensor::Shape{4, 2, 8, 8}));
    EXPECT_EQ(frames.at(0, 0, 2, 1), 1.0F);  // ON channel, y=2, x=1
    EXPECT_EQ(frames.at(1, 1, 4, 3), 1.0F);  // OFF channel
    EXPECT_EQ(frames.sum(), 2.0F);
}

TEST(Events, FramesReportDroppedCount) {
    const std::vector<Event> events = {{1, 2, 0, true},
                                       {9, 0, 1, false},   // x out of range
                                       {0, 0, 5, true},    // t out of range
                                       {-1, 3, 2, true},   // x negative
                                       {3, 3, 3, false}};
    std::int64_t dropped = -1;
    const auto frames = events_to_frames(events, 8, 4, &dropped);
    EXPECT_EQ(dropped, 3);
    EXPECT_EQ(frames.sum(), 2.0F);
    // The logging overload rasterises identically.
    const auto logged = events_to_frames(events, 8, 4);
    for (std::int64_t i = 0; i < frames.numel(); ++i) {
        ASSERT_EQ(logged.flat(i), frames.flat(i));
    }
}

TEST(Events, NoiseSurvivesSmallSensors) {
    EventSceneConfig cfg;
    cfg.size = 16;
    cfg.objects = 0;  // noise-only scene
    cfg.timesteps = 400;
    cfg.noise_rate = 0.002F;  // 0.512 expected events/step: plain
                              // truncation would emit exactly zero
    const auto events = make_event_scene(cfg);
    EXPECT_FALSE(events.empty());
    // Binomial(400, 0.512): mean ~205, sd ~10 — bounds are generous.
    EXPECT_GT(events.size(), 80U);
    EXPECT_LE(events.size(), 400U);
}

TEST(Events, WindowsConcatenateToMonolithicFrames) {
    EventSceneConfig cfg;
    cfg.size = 12;
    cfg.timesteps = 8;
    const auto events = make_event_scene(cfg);
    std::int64_t mono_dropped = 0;
    const auto mono = events_to_frames(events, cfg.size, cfg.timesteps, &mono_dropped);
    for (const std::int64_t w : {1, 3, 4, 8}) {
        SCOPED_TRACE("window_steps=" + std::to_string(w));
        std::int64_t dropped = -1;
        const auto windows =
            events_to_windows(events, cfg.size, cfg.timesteps, w, &dropped);
        EXPECT_EQ(dropped, mono_dropped);
        EXPECT_EQ(windows.size(),
                  static_cast<std::size_t>((cfg.timesteps + w - 1) / w));
        std::int64_t t0 = 0;
        for (const auto& win : windows) {
            const std::int64_t steps = win.shape()[0];
            for (std::int64_t t = 0; t < steps; ++t) {
                for (std::int64_t c = 0; c < 2; ++c) {
                    for (std::int64_t y = 0; y < cfg.size; ++y) {
                        for (std::int64_t x = 0; x < cfg.size; ++x) {
                            ASSERT_EQ(win.at(t, c, y, x), mono.at(t0 + t, c, y, x));
                        }
                    }
                }
            }
            t0 += steps;
        }
        EXPECT_EQ(t0, cfg.timesteps);
    }
    EXPECT_THROW(
        static_cast<void>(events_to_windows(events, cfg.size, cfg.timesteps, 0)),
        std::invalid_argument);
}

TEST(Cifar, MissingDirectoryReturnsNullopt) {
    EXPECT_FALSE(load_cifar10("/nonexistent/cifar-dir").has_value());
}

}  // namespace
}  // namespace sia::data
