// Dataset tests: synthetic generator, normalisation, augmentation,
// event streams, CIFAR loader behaviour without data files.
#include <gtest/gtest.h>

#include "data/augment.hpp"
#include "data/cifar.hpp"
#include "data/events.hpp"
#include "data/synthetic.hpp"

namespace sia::data {
namespace {

TEST(Synthetic, ShapesAndLabels) {
    SyntheticConfig cfg;
    cfg.classes = 5;
    cfg.train_per_class = 4;
    cfg.test_per_class = 2;
    const auto tt = make_synthetic(cfg);
    EXPECT_EQ(tt.train.size(), 20);
    EXPECT_EQ(tt.test.size(), 10);
    EXPECT_EQ(tt.train.images.shape(), (tensor::Shape{20, 3, 32, 32}));
    for (const auto l : tt.train.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, 5);
    }
}

TEST(Synthetic, DeterministicAcrossCalls) {
    SyntheticConfig cfg;
    cfg.train_per_class = 2;
    cfg.test_per_class = 1;
    const auto a = make_synthetic(cfg);
    const auto b = make_synthetic(cfg);
    for (std::int64_t i = 0; i < a.train.images.numel(); ++i) {
        ASSERT_EQ(a.train.images.flat(i), b.train.images.flat(i));
    }
}

TEST(Synthetic, SeedChangesData) {
    SyntheticConfig a;
    a.train_per_class = 2;
    SyntheticConfig b = a;
    b.seed = a.seed + 1;
    const auto da = make_synthetic(a);
    const auto db = make_synthetic(b);
    bool any_diff = false;
    for (std::int64_t i = 0; i < da.train.images.numel() && !any_diff; ++i) {
        any_diff = da.train.images.flat(i) != db.train.images.flat(i);
    }
    EXPECT_TRUE(any_diff);
}

TEST(Synthetic, NormalisedToUnitRange) {
    SyntheticConfig cfg;
    cfg.train_per_class = 4;
    const auto tt = make_synthetic(cfg);
    for (std::int64_t i = 0; i < tt.train.images.numel(); ++i) {
        ASSERT_GE(tt.train.images.flat(i), 0.0F);
        ASSERT_LE(tt.train.images.flat(i), 1.0F);
    }
    for (std::int64_t i = 0; i < tt.test.images.numel(); ++i) {
        ASSERT_GE(tt.test.images.flat(i), 0.0F);
        ASSERT_LE(tt.test.images.flat(i), 1.0F);
    }
}

TEST(Synthetic, InterleavedPrefixIsBalanced) {
    SyntheticConfig cfg;
    cfg.classes = 10;
    cfg.train_per_class = 5;
    const auto tt = make_synthetic(cfg);
    const auto prefix = tt.train.take(10);
    std::vector<int> count(10, 0);
    for (const auto l : prefix.labels) ++count[static_cast<std::size_t>(l)];
    for (const int c : count) EXPECT_EQ(c, 1);
}

TEST(Dataset, SampleExtraction) {
    SyntheticConfig cfg;
    cfg.train_per_class = 2;
    const auto tt = make_synthetic(cfg);
    const auto s = tt.train.sample(3);
    EXPECT_EQ(s.shape(), (tensor::Shape{1, 3, 32, 32}));
    for (std::int64_t i = 0; i < s.numel(); ++i) {
        ASSERT_EQ(s.flat(i), tt.train.images.flat(3 * s.numel() + i));
    }
}

TEST(Augment, AppendsCopiesAndKeepsLabels) {
    SyntheticConfig cfg;
    cfg.classes = 3;
    cfg.train_per_class = 2;
    const auto tt = make_synthetic(cfg);
    AugmentConfig acfg;
    acfg.copies = 2;
    const Dataset aug = augment(tt.train, acfg);
    EXPECT_EQ(aug.size(), tt.train.size() * 3);
    for (std::int64_t i = 0; i < tt.train.size(); ++i) {
        EXPECT_EQ(aug.labels[static_cast<std::size_t>(i)],
                  tt.train.labels[static_cast<std::size_t>(i)]);
        EXPECT_EQ(aug.labels[static_cast<std::size_t>(tt.train.size() + i)],
                  tt.train.labels[static_cast<std::size_t>(i)]);
    }
    // Originals preserved verbatim.
    for (std::int64_t i = 0; i < tt.train.images.numel(); ++i) {
        ASSERT_EQ(aug.images.flat(i), tt.train.images.flat(i));
    }
}

TEST(Events, SceneGeneratesSortedEvents) {
    EventSceneConfig cfg;
    cfg.timesteps = 6;
    const auto events = make_event_scene(cfg);
    EXPECT_FALSE(events.empty());
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LE(events[i - 1].t, events[i].t);
    }
    for (const auto& e : events) {
        EXPECT_GE(e.x, 0);
        EXPECT_LT(e.x, cfg.size);
        EXPECT_GE(e.t, 0);
        EXPECT_LT(e.t, cfg.timesteps);
    }
}

TEST(Events, FramesRasterisation) {
    std::vector<Event> events = {{1, 2, 0, true}, {3, 4, 1, false}, {0, 0, 5, true}};
    const auto frames = events_to_frames(events, 8, 4);  // t=5 dropped
    EXPECT_EQ(frames.shape(), (tensor::Shape{4, 2, 8, 8}));
    EXPECT_EQ(frames.at(0, 0, 2, 1), 1.0F);  // ON channel, y=2, x=1
    EXPECT_EQ(frames.at(1, 1, 4, 3), 1.0F);  // OFF channel
    EXPECT_EQ(frames.sum(), 2.0F);
}

TEST(Cifar, MissingDirectoryReturnsNullopt) {
    EXPECT_FALSE(load_cifar10("/nonexistent/cifar-dir").has_value());
}

}  // namespace
}  // namespace sia::data
