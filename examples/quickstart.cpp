// Quickstart: the whole co-optimisation flow on a small ResNet-18.
//
//   1. generate a synthetic 10-class image dataset;
//   2. train an FP32 ResNet-18 (reduced width for CPU speed);
//   3. quantize activations (L-level ReLU) and finetune;
//   4. convert to an integer SNN (IF neurons, INT8 weights);
//   5. deploy on the cycle-accurate SIA simulator and cross-check
//      bit-exactness against the functional reference;
//   6. report accuracy vs timesteps and hardware cycle/power figures.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/deploy.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "hw/power.hpp"
#include "nn/resnet.hpp"
#include "snn/encoding.hpp"
#include "util/table.hpp"

int main() {
    using namespace sia;

    // 1. Data.
    data::SyntheticConfig dcfg;
    dcfg.train_per_class = 80;
    dcfg.test_per_class = 20;
    const data::TrainTest tt = data::make_synthetic(dcfg);
    std::cout << "dataset: " << tt.train.size() << " train / " << tt.test.size()
              << " test images (synthetic CIFAR substitute)\n";

    // 2-4. Pipeline.
    util::Rng rng(7);
    nn::ResNetConfig mcfg;
    mcfg.width = 8;  // paper uses 64; reduced for CPU-only quickstart
    nn::ResNet18 model(mcfg, rng);

    core::PipelineConfig pcfg;
    pcfg.train.epochs = 4;
    pcfg.train.batch_size = 32;
    pcfg.train.sgd.lr = 0.05F;
    pcfg.levels = 2;                    // the paper's L=2 quantized ReLU
    pcfg.finetune_epochs = 2;
    pcfg.convert.host_front_layers = 1; // PS-side frame conversion (SIV)
    pcfg.verbose = true;
    const core::Pipeline pipeline(pcfg);
    core::PipelineResult result = pipeline.run(model, tt.train, tt.test);

    std::cout << "ANN  (FP32)      accuracy: " << result.ann_accuracy * 100.0 << "%\n";
    std::cout << "ANN  (quantized) accuracy: " << result.qann_accuracy * 100.0 << "%\n";

    // 6a. SNN accuracy vs timesteps (functional engine). The first conv
    // layer runs on the "processor" (HybridFrontEnd), mirroring the
    // ZYNQ's frame-data-conversion role.
    const std::int64_t timesteps = 12;
    const core::HybridFrontEnd front_end(model.ir(), 1);
    const core::InputEncoder encoder = [&](const tensor::Tensor& img, std::int64_t t) {
        return front_end.encode(img, t);
    };
    const auto acc = core::evaluate_snn_over_time(result.snn, tt.test, timesteps, encoder);
    util::Table table("SNN accuracy vs timesteps");
    table.header({"T", "accuracy"});
    for (std::size_t t = 0; t < acc.size(); ++t) {
        table.row({util::cell(static_cast<long long>(t + 1)),
                   util::cell_pct(acc[t] * 100.0)});
    }
    table.print(std::cout);

    // 5/6b. Deploy one sample on the cycle-accurate simulator.
    const auto spikes = front_end.encode(tt.test.sample(0), timesteps);
    core::Deployer deployer;
    const core::DeployReport report = deployer.deploy(result.snn, spikes);
    std::cout << "hardware/software bit-exact: " << (report.bit_exact ? "YES" : "NO");
    if (!report.bit_exact) std::cout << "  (" << report.mismatch << ")";
    std::cout << "\n";
    std::cout << "simulated inference: " << report.hardware.total_ms(deployer.config())
              << " ms @" << deployer.config().clock_mhz << " MHz, "
              << report.hardware.effective_gops(deployer.config())
              << " effective GOPS\n";

    const hw::PowerReport power =
        hw::estimate_power(report.hardware, deployer.config());
    std::cout << "estimated board power: " << power.total_watts << " W ("
              << power.gops_per_watt << " GOPS/W)\n";
    return report.bit_exact ? 0 : 1;
}
