// Full walkthrough of the Fig. 1 co-optimisation pipeline on VGG-11,
// exposing every intermediate artefact: stage metrics, learned step
// sizes, quantization scales, the aggregation-core (G, H) coefficients,
// and the compiled hardware program.
//
// Build & run:  ./build/examples/ann_to_snn_pipeline
#include <iostream>

#include "core/compiler.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "nn/vgg.hpp"
#include "util/table.hpp"

int main() {
    using namespace sia;

    data::SyntheticConfig dcfg;
    dcfg.train_per_class = 60;
    dcfg.test_per_class = 15;
    const auto tt = data::make_synthetic(dcfg);

    util::Rng rng(11);
    nn::VggConfig mcfg;
    mcfg.width = 8;
    nn::Vgg11 model(mcfg, rng);

    core::PipelineConfig pcfg;
    pcfg.train.epochs = 4;
    pcfg.levels = 2;
    pcfg.finetune_epochs = 2;
    pcfg.convert.host_front_layers = 1;
    pcfg.verbose = true;
    const core::Pipeline pipeline(pcfg);

    std::cout << "--- stage 1: FP32 ANN training ---\n";
    pipeline.train_ann(model, tt.train);
    std::cout << "ANN accuracy: "
              << nn::evaluate(model, tt.test.images, tt.test.labels).accuracy * 100
              << "%\n";

    std::cout << "--- stage 2: quantized ReLU (L=" << pcfg.levels
              << ") calibration + finetune ---\n";
    pipeline.quantize_and_finetune(model, tt.train);
    std::cout << "quantized-ANN accuracy: "
              << nn::evaluate(model, tt.test.images, tt.test.labels).accuracy * 100
              << "%\n";

    util::Table steps("learned step sizes (IF thresholds after conversion)");
    steps.header({"activation", "step s_l", "calibrated max"});
    for (const auto* act : model.activations()) {
        steps.row({act->name(), util::cell(act->step(), 4),
                   util::cell(act->calibrated_max(), 4)});
    }
    steps.print(std::cout);

    std::cout << "--- stage 3: conversion to integer SNN ---\n";
    const auto snn_model = pipeline.convert(model);
    util::Table layers("converted layers");
    layers.header({"layer", "q_w", "gain[0]", "shift", "bias[0]", "theta", "neurons"});
    for (const auto& layer : snn_model.layers) {
        layers.row({layer.label, util::cell(layer.main.weight_scale, 5),
                    util::cell(static_cast<long long>(layer.main.gain.at(0))),
                    util::cell(static_cast<long long>(layer.main.gain_shift)),
                    util::cell(static_cast<long long>(layer.main.bias.at(0))),
                    util::cell(static_cast<long long>(layer.threshold)),
                    util::cell(layer.neurons())});
    }
    layers.print(std::cout);

    std::cout << "--- compile onto the SIA ---\n";
    const core::SiaCompiler compiler;
    const auto program = compiler.compile(snn_model);
    util::Table plans("hardware schedule");
    plans.header({"layer", "OC tiles", "IC chunk", "spatial tiles", "weights (B)",
                  "path"});
    for (const auto& plan : program.layers) {
        plans.row({snn_model.layers[static_cast<std::size_t>(plan.layer)].label,
                   util::cell(plan.oc_tiles), util::cell(plan.ic_chunk),
                   util::cell(plan.spatial_tiles), util::cell(plan.weight_stream_bytes),
                   plan.mmio ? "AXI-lite (PS)" : "DMA"});
    }
    plans.print(std::cout);

    const core::HybridFrontEnd fe(model.ir(), 1);
    const auto acc = core::evaluate_snn_over_time(
        snn_model, tt.test, 8,
        [&](const tensor::Tensor& img, std::int64_t t) { return fe.encode(img, t); });
    std::cout << "SNN accuracy at T=8: " << acc.back() * 100 << "%\n";
    return 0;
}
