// Reconfigurability demo (§III-A, Table II): one SIA instance executes
// conv layers of different kernel sizes and a fully-connected layer by
// reprogramming the per-layer configuration — no hardware change. Prints
// the compiled schedule and the PE window schedule for each shape.
//
// Build & run:  ./build/examples/reconfigure_kernels
#include <iostream>

#include "core/compiler.hpp"
#include "sim/config.hpp"
#include "util/table.hpp"

int main() {
    using namespace sia;

    const sim::SiaConfig cfg;
    std::cout << "SIA instance: " << cfg.pe_count() << " PEs ("
              << cfg.pe_rows << "x" << cfg.pe_cols << ") @" << cfg.clock_mhz
              << " MHz, " << cfg.weight_bytes / 1024 << " kB weight memory ("
              << cfg.weight_bytes / cfg.pe_count() << " B kernel slot per PE)\n\n";

    // PE window schedule per kernel size (the 3-mux/8-bit-adder datapath).
    util::Table schedule("PE window schedule by kernel size");
    schedule.header({"kernel", "rows", "segments/row", "cycles/window",
                     "slot fit (IC per load)"});
    for (const std::int64_t k : {1L, 3L, 5L, 7L, 11L}) {
        const std::int64_t slot = cfg.weight_bytes / cfg.pe_count();
        schedule.row({util::cell(k), util::cell(k), util::cell((k + 2) / 3),
                      util::cell(sim::SiaConfig::window_cycles(k)),
                      util::cell(std::max<std::int64_t>(1, slot / (k * k)))});
    }
    schedule.print(std::cout);

    // Compile a mixed-shape model: each layer reconfigures the core.
    snn::SnnModel model;
    model.input_channels = 8;
    model.input_h = 16;
    model.input_w = 16;
    model.classes = 10;
    const auto add_conv = [&](std::int64_t kernel, std::int64_t oc, const char* label) {
        snn::SnnLayer layer;
        layer.op = snn::LayerOp::kConv;
        layer.label = label;
        layer.input = static_cast<int>(model.layers.size()) - 1;
        const std::int64_t ic =
            model.layers.empty() ? model.input_channels : model.layers.back().out_channels;
        layer.main.in_channels = ic;
        layer.main.out_channels = oc;
        layer.main.kernel = kernel;
        layer.main.stride = 1;
        layer.main.padding = kernel / 2;
        layer.main.weights.assign(static_cast<std::size_t>(ic * oc * kernel * kernel), 1);
        layer.main.gain.assign(static_cast<std::size_t>(oc), 256);
        layer.main.bias.assign(static_cast<std::size_t>(oc), 0);
        layer.out_channels = oc;
        layer.out_h = 16;
        layer.out_w = 16;
        layer.in_h = 16;
        layer.in_w = 16;
        model.layers.push_back(layer);
    };
    add_conv(3, 32, "conv3x3");
    add_conv(5, 32, "conv5x5");
    add_conv(7, 64, "conv7x7");
    add_conv(1, 64, "conv1x1");
    {
        snn::SnnLayer fc;
        fc.op = snn::LayerOp::kLinear;
        fc.label = "fc";
        fc.input = static_cast<int>(model.layers.size()) - 1;
        fc.spiking = false;
        fc.main.in_features = 64 * 16 * 16;
        fc.main.out_features = 10;
        fc.main.weights.assign(static_cast<std::size_t>(10 * 64 * 16 * 16), 1);
        fc.main.gain.assign(10, 256);
        fc.main.bias.assign(10, 0);
        fc.out_channels = 10;
        model.layers.push_back(fc);
    }
    model.validate();

    const auto program = core::SiaCompiler(cfg).compile(model);
    util::Table plans("compiled per-layer configuration (one hardware, five shapes)");
    plans.header({"layer", "kernel", "OC tiles", "IC chunk", "IC passes",
                  "spatial tiles", "path"});
    for (const auto& plan : program.layers) {
        const auto& layer = model.layers[static_cast<std::size_t>(plan.layer)];
        plans.row({layer.label,
                   layer.op == snn::LayerOp::kConv ? util::cell(layer.main.kernel)
                                                   : std::string("-"),
                   util::cell(plan.oc_tiles), util::cell(plan.ic_chunk),
                   util::cell(plan.ic_passes), util::cell(plan.spatial_tiles),
                   plan.mmio ? "AXI-lite (PS)" : "DMA"});
    }
    plans.print(std::cout);
    std::cout << "every shape maps onto the same 64-PE array by reconfiguring the\n"
                 "window schedule, kernel-slot chunking and tiling — the paper's\n"
                 "reconfigurability claim (SIII-A, Table II).\n";
    return 0;
}
