// Event-driven input path: a synthetic DVS-style address-event stream is
// fed DIRECTLY to the SIA without frame conversion — the §IV use case
// where "the ZYNQ processor ... can transfer event-driven data streams
// directly to the SIA". Demonstrates that the event-driven PE array's
// cycle count tracks the event rate of the sensor.
//
// Build & run:  ./build/examples/event_driven_dvs
#include <iostream>
#include <tuple>

#include "core/compiler.hpp"
#include "core/convert.hpp"
#include "data/events.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "sim/sia.hpp"
#include "snn/encoding.hpp"
#include "util/table.hpp"

namespace {

using namespace sia;

/// Two-conv event-processing network: 2 (ON/OFF) -> 16 -> 32 channels.
struct EventNet {
    explicit EventNet(util::Rng& rng)
        : conv1({2, 16, 3, 1, 1}, rng, "conv1"),
          bn1(16, "bn1"),
          act1("act1"),
          conv2({16, 32, 3, 2, 1}, rng, "conv2"),
          bn2(32, "bn2"),
          act2("act2") {
        // Calibrate on random sparse event frames.
        tensor::Tensor x(tensor::Shape{2, 2, 32, 32});
        for (std::int64_t i = 0; i < x.numel(); ++i) {
            x.flat(i) = rng.bernoulli(0.05) ? 1.0F : 0.0F;
        }
        for (int rep = 0; rep < 3; ++rep) {
            (void)bn2.forward(conv2.forward(
                act1.forward(bn1.forward(conv1.forward(x, true), true), true), true),
                true);
        }
        act1.begin_calibration();
        act2.begin_calibration();
        (void)act2.forward(
            bn2.forward(conv2.forward(act1.forward(bn1.forward(conv1.forward(x, false),
                                                               false),
                                                   false),
                                      false),
                        false),
            false);
        act1.end_calibration();
        act2.end_calibration();
        act1.enable_quant(2);
        act2.enable_quant(2);
    }

    [[nodiscard]] nn::NetworkIR ir() const {
        nn::NetworkIR net;
        net.model_name = "eventnet";
        net.input_channels = 2;
        net.input_h = 32;
        net.input_w = 32;
        nn::IrNode in;
        in.op = nn::IrOp::kInput;
        in.label = "events";
        in.out_channels = 2;
        in.out_h = 32;
        in.out_w = 32;
        net.nodes.push_back(in);
        nn::IrNode c1;
        c1.op = nn::IrOp::kConv;
        c1.label = "conv1";
        c1.input = 0;
        c1.conv = &conv1;
        c1.bn = &bn1;
        c1.act = &act1;
        c1.out_channels = 16;
        c1.out_h = 32;
        c1.out_w = 32;
        net.nodes.push_back(c1);
        nn::IrNode c2;
        c2.op = nn::IrOp::kConv;
        c2.label = "conv2";
        c2.input = 1;
        c2.conv = &conv2;
        c2.bn = &bn2;
        c2.act = &act2;
        c2.out_channels = 32;
        c2.out_h = 16;
        c2.out_w = 16;
        net.nodes.push_back(c2);
        return net;
    }

    nn::Conv2d conv1;
    nn::BatchNorm2d bn1;
    nn::Activation act1;
    nn::Conv2d conv2;
    nn::BatchNorm2d bn2;
    nn::Activation act2;
};

}  // namespace

int main() {
    util::Rng rng(23);
    EventNet net(rng);
    const auto model = core::AnnToSnnConverter().convert(net.ir());
    const sim::SiaConfig cfg;
    const auto program = core::SiaCompiler(cfg).compile(model);

    util::Table table("event-driven inference vs sensor activity");
    table.header({"scene", "events", "input rate", "PE compute cycles", "latency (ms)",
                  "PL spikes"});
    for (const auto& [name, objects, noise] :
         {std::tuple{"sparse (1 object)", std::int64_t{1}, 0.001F},
          std::tuple{"busy (4 objects)", std::int64_t{4}, 0.004F},
          std::tuple{"noisy (8 objects)", std::int64_t{8}, 0.02F}}) {
        data::EventSceneConfig scene;
        scene.objects = objects;
        scene.noise_rate = noise;
        scene.timesteps = 8;
        const auto events = data::make_event_scene(scene);
        const auto frames = data::events_to_frames(events, scene.size, scene.timesteps);
        const auto train = sia::snn::frames_to_train(frames);

        sim::Sia sia(cfg, model, program);
        const auto res = sia.run(train);
        std::int64_t compute = 0;
        std::int64_t spikes = 0;
        for (const auto& s : res.layer_stats) compute += s.compute;
        for (const auto n : res.spike_counts) spikes += n;
        table.row({name, util::cell(static_cast<long long>(events.size())),
                   util::cell(sia::snn::decode_mean_rate(train), 4),
                   util::cell(compute), util::cell(res.total_ms(cfg), 3),
                   util::cell(spikes)});
    }
    table.print(std::cout);
    std::cout << "event-driven property: PE compute cycles scale with sensor\n"
                 "activity while the fixed configuration cost stays constant.\n";
    return 0;
}
