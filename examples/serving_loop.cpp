// Serving loop: the unified core::Backend / core::Server API end to end.
//
//   1. build a small SNN (calibrated random weights — serving behaviour
//      depends on geometry and spike activity, not task accuracy);
//   2. stand up a core::Server over the functional backend and submit a
//      mixed stream of requests (pre-encoded spikes, thermometer- and
//      Poisson-encoded raw images) from multiple client threads;
//   3. swap the same serving loop onto the cycle-accurate SiaBackend —
//      identical predictions, now with per-request cycle stats;
//   4. swap it again onto a 2-shard pipelined ShardedSiaBackend —
//      still identical predictions, now executed by a SiaCluster with
//      cluster-level fill/drain/transfer accounting;
//   5. print throughput, admission batching, and latency percentiles;
//   6. re-submit a request with a temporal early-exit criterion armed
//      and read back how many timesteps it actually paid.
//
// Serving reads only the final readout (Response::predicted()), so the
// functional lane runs with per-step readout history off.
//
// Build & run:  ./build/examples/serving_loop
#include <future>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "core/convert.hpp"
#include "core/server.hpp"
#include "nn/vgg.hpp"
#include "snn/encoding.hpp"
#include "snn/engine.hpp"
#include "snn/exit.hpp"
#include "util/rng.hpp"

int main() {
    using namespace sia;

    // 1. Model: reduced-width VGG-11, ANN -> SNN converted.
    util::Rng rng(97);
    nn::VggConfig mcfg;
    mcfg.width = 8;
    mcfg.input_size = 16;
    nn::Vgg11 ann(mcfg, rng);
    const snn::SnnModel model =
        core::AnnToSnnConverter(core::ConvertOptions{}).convert(ann.ir());
    const std::int64_t timesteps = 6;

    // Client payloads: raw images and one pre-encoded train.
    std::vector<tensor::Tensor> images;
    for (int i = 0; i < 8; ++i) {
        tensor::Tensor img(tensor::Shape{1, model.input_channels, model.input_h,
                                         model.input_w});
        for (std::int64_t j = 0; j < img.numel(); ++j) img.flat(j) = rng.uniform();
        images.push_back(std::move(img));
    }
    const snn::SpikeTrain pre_encoded = snn::encode_thermometer(images[0], timesteps);

    const auto serve = [&](std::shared_ptr<core::Backend> backend) {
        core::Server server(std::move(backend),
                            {.threads = 2,
                             .max_queue = 64,
                             .max_batch = 8,
                             .tenant_weights = {{"premium", 2}, {"batch", 1}}});
        std::cout << "\n-- serving via backend '" << server.backend().name()
                  << "' --\n";

        // 2. Two client threads (tenants with different fairness weights
        // and priorities), mixed encodings, one shared server.
        std::vector<std::future<core::Response>> futures(1 + images.size());
        futures[0] = server.submit(core::Request::from_train(pre_encoded));
        std::thread premium_client([&] {
            for (std::size_t i = 0; i < images.size() / 2; ++i) {
                futures[1 + i] = server.submit(
                    core::Request::thermometer(images[i], timesteps)
                        .with("", "premium", core::Priority::kHigh));
            }
        });
        std::thread batch_client([&] {
            for (std::size_t i = images.size() / 2; i < images.size(); ++i) {
                futures[1 + i] =
                    server.submit(core::Request::poisson(images[i], timesteps)
                                      .with("", "batch", core::Priority::kLow));
            }
        });
        premium_client.join();
        batch_client.join();

        for (std::size_t i = 0; i < futures.size(); ++i) {
            const core::Response response = futures[i].get();
            std::cout << "request " << i << ": class " << response.predicted();
            if (response.has_cycle_stats()) {
                std::cout << " (" << response.total_cycles() << " cycles)";
            }
            std::cout << "\n";
        }

        server.shutdown();
        const auto stats = server.stats();
        std::cout << "served " << stats.completed << " requests in "
                  << stats.batches << " batches (mean batch "
                  << stats.mean_batch_size() << ")\n"
                  << "latency p50/p95/p99 = " << stats.latency_us.p50() / 1e3 << "/"
                  << stats.latency_us.p95() / 1e3 << "/"
                  << stats.latency_us.p99() / 1e3 << " ms\n";
    };

    // 3. The same serving loop over every engine — that is the point
    // of the backend-polymorphic API. The last lane is a two-shard
    // layer-pipelined Sia cluster: the server drives it like any other
    // backend, and the cluster reports its own pipeline timeline.
    snn::EngineConfig lean;
    lean.record_readout_history = false;
    serve(std::make_shared<core::FunctionalBackend>(model, lean));
    serve(std::make_shared<core::SiaBackend>(model));

    auto sharded = std::make_shared<core::ShardedSiaBackend>(
        model, sim::SiaConfig{},
        core::ShardOptions{.partition = sim::ShardPartition::kPipeline,
                           .shards = 2});
    serve(sharded);
    const sim::ShardStats shard_stats = sharded->take_shard_stats();
    std::cout << "cluster: " << sim::to_string(shard_stats.partition) << " x"
              << shard_stats.shards << ", makespan "
              << shard_stats.makespan_cycles << " cycles, transfer stall "
              << shard_stats.transfer_stall_cycles << ", fill "
              << shard_stats.fill_cycles << ", drain "
              << shard_stats.drain_cycles << "\n";

    // 4. Temporal early exit: the same request with a confidence
    // criterion armed retires as soon as its accumulated readout lead
    // clears the margin; steps_used reports what it actually paid.
    {
        core::Server server(std::make_shared<core::FunctionalBackend>(model, lean),
                            {.threads = 2});
        const snn::ExitCriterion criterion{.margin = 4,
                                           .stable_checks = 0,
                                           .min_steps = 2,
                                           .hysteresis = 1,
                                           .check_interval = 1};
        const core::Response response =
            server.submit(
                      core::Request::from_train(pre_encoded).with_early_exit(criterion))
                .get();
        std::cout << "\nearly exit: class " << response.predicted() << " after "
                  << response.steps_used << "/" << response.steps_offered
                  << " steps (" << snn::to_string(response.exit_reason) << ")\n";
        server.shutdown();
    }

    return 0;
}
