// Google-benchmark microbenchmarks of the hot paths: PE segment
// accumulation, aggregation arithmetic, event-driven conv psum, neuron
// update, thermometer encoding, and a full functional-engine step.
#include <benchmark/benchmark.h>

#include <array>

#include "sim/aggregation.hpp"
#include "sim/pe.hpp"
#include "snn/compute.hpp"
#include "snn/encoding.hpp"
#include "snn/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace sia;

void BM_PeSegment(benchmark::State& state) {
    sim::Pe pe;
    const std::array<std::uint8_t, 3> spikes = {1, 0, 1};
    const std::array<std::int8_t, 3> weights = {12, -7, 3};
    for (auto _ : state) {
        pe.begin_window();
        benchmark::DoNotOptimize(pe.accumulate_segment(spikes, weights));
        benchmark::DoNotOptimize(pe.emit());
    }
}
BENCHMARK(BM_PeSegment);

void BM_AggregationNeuron(benchmark::State& state) {
    std::int16_t membrane = 0;
    for (auto _ : state) {
        const std::int16_t current = sim::AggregationCore::batch_norm(1234, 300, -12, 8);
        const auto update = sim::AggregationCore::activate(
            membrane, current, 256, false, 4, snn::ResetMode::kSubtract);
        membrane = update.new_potential;
        benchmark::DoNotOptimize(membrane);
    }
}
BENCHMARK(BM_AggregationNeuron);

snn::Branch make_branch(std::int64_t ic, std::int64_t oc, util::Rng& rng) {
    snn::Branch b;
    b.in_channels = ic;
    b.out_channels = oc;
    b.kernel = 3;
    b.stride = 1;
    b.padding = 1;
    b.weights.resize(static_cast<std::size_t>(ic * oc * 9));
    for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
    b.gain.assign(static_cast<std::size_t>(oc), 300);
    b.bias.assign(static_cast<std::size_t>(oc), 0);
    return b;
}

void BM_ConvPsum(benchmark::State& state) {
    const auto channels = state.range(0);
    util::Rng rng(1);
    const auto branch = make_branch(channels, 64, rng);
    const auto wt = snn::compute::transpose_conv(branch);
    snn::SpikeMap in(channels, 16, 16);
    for (std::int64_t i = 0; i < in.size(); ++i) in.set_flat(i, rng.bernoulli(0.15));
    std::vector<std::int32_t> psum(static_cast<std::size_t>(64 * 16 * 16));
    for (auto _ : state) {
        snn::compute::conv_psum(branch, wt, in, 16, 16, psum);
        benchmark::DoNotOptimize(psum.data());
    }
    state.SetItemsProcessed(state.iterations() * in.count() * 9 * 64);
}
BENCHMARK(BM_ConvPsum)->Arg(16)->Arg(64);

void BM_Encode(benchmark::State& state) {
    util::Rng rng(2);
    tensor::Tensor img(tensor::Shape{1, 3, 32, 32});
    for (std::int64_t i = 0; i < img.numel(); ++i) img.flat(i) = rng.uniform(0.0F, 1.0F);
    for (auto _ : state) {
        benchmark::DoNotOptimize(snn::encode_thermometer(img, 8));
    }
}
BENCHMARK(BM_Encode);

snn::SnnModel micro_model() {
    util::Rng rng(3);
    snn::SnnModel model;
    model.input_channels = 3;
    model.input_h = 16;
    model.input_w = 16;
    model.classes = 16;
    snn::SnnLayer conv;
    conv.op = snn::LayerOp::kConv;
    conv.label = "c";
    conv.input = -1;
    conv.main = make_branch(3, 16, rng);
    conv.out_channels = 16;
    conv.out_h = 16;
    conv.out_w = 16;
    conv.in_h = 16;
    conv.in_w = 16;
    model.layers.push_back(conv);
    return model;
}

void BM_EngineStep(benchmark::State& state) {
    const auto model = micro_model();
    snn::FunctionalEngine engine(model);
    util::Rng rng(4);
    snn::SpikeMap input(3, 16, 16);
    for (std::int64_t i = 0; i < input.size(); ++i) input.set_flat(i, rng.bernoulli(0.2));
    for (auto _ : state) {
        engine.step(input);
        benchmark::DoNotOptimize(engine.spike_count(0));
    }
}
BENCHMARK(BM_EngineStep);

}  // namespace

BENCHMARK_MAIN();
