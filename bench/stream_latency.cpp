// Streaming-session latency: serve synthetic DVS event streams as
// chunked event windows against core::Server sessions (persistent
// membranes, carried readout) and report per-window p50/p99 service
// latency at several event densities, for both backends.
//
// Every chunked stream is checked bit-identical against the monolithic
// single-run reference — the sessions' correctness contract — and a
// chunked-vs-monolithic throughput comparison quantifies what the
// session machinery costs: N streams served as T/W-step windows versus
// the same N streams served as one T-step request each. With --check
// the chunked side must hold at least 0.8x of monolithic throughput at
// the ~1% ("typical") event density, the regression tripwire for
// accidental serialization across sessions (serialization *within* a
// session is the contract; across sessions it is a bug).
//
// The model is direct-constructed (conv 2->8, conv 8->16 stride 2,
// linear readout): event frames are 2-channel (ON/OFF polarity), so
// the RGB paper topologies do not apply.
//
// Emits machine-readable BENCH_STREAM.json.
//
// Flags: --quick (reduced sweep), --check, --out <path>, --threads <n>.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "core/backend.hpp"
#include "core/batch_runner.hpp"
#include "core/server.hpp"
#include "data/events.hpp"
#include "snn/encoding.hpp"
#include "snn/engine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace sia;
using Clock = std::chrono::steady_clock;

constexpr std::int64_t kSensorSize = 24;
constexpr std::int64_t kWindowSteps = 8;
constexpr std::size_t kMaxBatch = 16;

/// 2-channel spiking CNN sized for DVS polarity frames.
snn::SnnModel stream_model(std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.name = "dvs-stream";
    model.input_channels = 2;
    model.input_h = kSensorSize;
    model.input_w = kSensorSize;

    const auto fill = [&rng](std::vector<std::int8_t>& weights, int lo, int hi) {
        for (auto& w : weights) w = static_cast<std::int8_t>(rng.integer(lo, hi));
    };
    const auto coeffs = [&rng](snn::Branch& b, std::int64_t channels) {
        b.gain.resize(static_cast<std::size_t>(channels));
        b.bias.resize(static_cast<std::size_t>(channels));
        for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
        for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
    };

    snn::SnnLayer conv0;
    conv0.op = snn::LayerOp::kConv;
    conv0.label = "conv0";
    conv0.input = -1;
    conv0.main.in_channels = 2;
    conv0.main.out_channels = 8;
    conv0.main.kernel = 3;
    conv0.main.stride = 1;
    conv0.main.padding = 1;
    conv0.main.weights.resize(static_cast<std::size_t>(2 * 8 * 9));
    fill(conv0.main.weights, -127, 127);
    coeffs(conv0.main, 8);
    conv0.in_h = kSensorSize;
    conv0.in_w = kSensorSize;
    conv0.out_channels = 8;
    conv0.out_h = kSensorSize;
    conv0.out_w = kSensorSize;
    model.layers.push_back(std::move(conv0));

    snn::SnnLayer conv1;
    conv1.op = snn::LayerOp::kConv;
    conv1.label = "conv1";
    conv1.input = 0;
    conv1.main.in_channels = 8;
    conv1.main.out_channels = 16;
    conv1.main.kernel = 3;
    conv1.main.stride = 2;
    conv1.main.padding = 1;
    conv1.main.weights.resize(static_cast<std::size_t>(8 * 16 * 9));
    fill(conv1.main.weights, -127, 127);
    coeffs(conv1.main, 16);
    conv1.in_h = kSensorSize;
    conv1.in_w = kSensorSize;
    conv1.out_channels = 16;
    conv1.out_h = kSensorSize / 2;
    conv1.out_w = kSensorSize / 2;
    model.layers.push_back(std::move(conv1));

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = 1;
    fc.spiking = false;
    fc.main.in_features = 16 * (kSensorSize / 2) * (kSensorSize / 2);
    fc.main.out_features = 10;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 10));
    fill(fc.main.weights, -64, 64);
    fc.main.gain.assign(10, 256);
    fc.main.bias.assign(10, 0);
    fc.out_channels = 10;
    model.layers.push_back(std::move(fc));
    model.classes = 10;
    model.validate();
    return model;
}

// ---- event streams ----

struct RateSpec {
    std::string name;
    std::int64_t objects;
    float event_rate;
    float noise_rate;
};

/// Three densities spanning the DVS operating range: sparse background
/// activity (~0.5% of pixel-steps firing), a typical tracked scene
/// (~1% — the density the throughput gate runs at), and a busy
/// multi-object scene (~5%).
constexpr std::array<RateSpec, 3> kRates = {{
    {"sparse", 0, 0.9F, 0.005F},
    {"typical", 1, 0.5F, 0.001F},
    {"busy", 3, 0.9F, 0.010F},
}};

struct Stream {
    std::vector<snn::SpikeTrain> windows;
    snn::SpikeTrain mono;
    std::size_t events = 0;
};

Stream make_stream(const RateSpec& spec, std::int64_t timesteps, std::uint64_t seed) {
    data::EventSceneConfig cfg;
    cfg.size = kSensorSize;
    cfg.timesteps = timesteps;
    cfg.objects = spec.objects;
    cfg.event_rate = spec.event_rate;
    cfg.noise_rate = spec.noise_rate;
    cfg.seed = seed;
    const auto events = data::make_event_scene(cfg);

    Stream stream;
    stream.events = events.size();
    std::int64_t dropped = 0;
    stream.mono =
        snn::frames_to_train(data::events_to_frames(events, cfg.size, timesteps, &dropped));
    for (const auto& frames :
         data::events_to_windows(events, cfg.size, timesteps, kWindowSteps)) {
        stream.windows.push_back(snn::frames_to_train(frames));
    }
    return stream;
}

/// Fraction of pixel-steps carrying an event (the paper's notion of
/// input activity; 2 polarity channels share one pixel budget).
double density(const std::vector<Stream>& streams, std::int64_t timesteps) {
    std::size_t events = 0;
    for (const auto& s : streams) events += s.events;
    return static_cast<double>(events) /
           (static_cast<double>(streams.size()) * static_cast<double>(timesteps) *
            static_cast<double>(kSensorSize * kSensorSize));
}

/// Build per-worker engines before any timed section.
void warm(const std::shared_ptr<core::Backend>& backend, const snn::SpikeTrain& train,
          std::size_t threads) {
    core::BatchRunner runner(backend, {.threads = threads});
    std::vector<core::Request> batch;
    for (std::size_t i = 0; i < std::max<std::size_t>(1, threads) * 2; ++i) {
        batch.push_back(core::Request::view_train(train));
    }
    (void)runner.run(batch);
}

// ---- per-window latency (closed loop) ----

struct RatePoint {
    std::string rate;
    std::string backend;
    double density = 0.0;
    std::size_t windows = 0;
    double p50_us = 0.0;
    double p99_us = 0.0;
};

/// Closed-loop window service: each window is submitted against the
/// stream's session and awaited before the next, so the histogram
/// records per-window service latency (admission to completion) on an
/// otherwise idle server. Verifies the chunked logits against the
/// monolithic reference — a mismatch is fatal to the bench.
util::StreamingHistogram measure_window_latency(
    const std::shared_ptr<core::Backend>& backend, const std::vector<Stream>& streams,
    const std::vector<std::vector<std::vector<std::int64_t>>>& references,
    std::size_t threads, bool& bit_identical) {
    core::Server server(backend, {.threads = threads, .max_batch = kMaxBatch});
    util::StreamingHistogram latency;
    for (std::size_t s = 0; s < streams.size(); ++s) {
        const std::string id = "stream-" + std::to_string(s);
        std::vector<std::vector<std::int64_t>> logits;
        for (std::size_t w = 0; w < streams[s].windows.size(); ++w) {
            const bool last = w + 1 == streams[s].windows.size();
            const auto t0 = Clock::now();
            const auto response =
                server.submit(core::Request::from_train(streams[s].windows[w])
                                  .with_session(id, /*close=*/last))
                    .get();
            latency.add(
                std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
            logits.insert(logits.end(), response.logits_per_step.begin(),
                          response.logits_per_step.end());
        }
        if (logits != references[s]) {
            bit_identical = false;
            std::cerr << "BIT-IDENTITY FAILED: chunked stream " << s
                      << " diverged from its monolithic reference\n";
        }
    }
    server.shutdown();
    return latency;
}

// ---- chunked vs monolithic throughput ----

struct ThroughputPoint {
    std::string backend;
    double density = 0.0;
    double mono_steps_per_sec = 0.0;
    double chunked_steps_per_sec = 0.0;
    double ratio = 0.0;
};

ThroughputPoint measure_throughput(
    const std::string& name,
    const std::function<std::shared_ptr<core::Backend>()>& make_backend,
    const std::vector<Stream>& streams, std::int64_t timesteps, std::size_t threads) {
    const double total_steps =
        static_cast<double>(streams.size()) * static_cast<double>(timesteps);
    ThroughputPoint point;
    point.backend = name;
    point.density = density(streams, timesteps);

    // Monolithic: one T-step request per stream, all in flight at once.
    {
        auto backend = make_backend();
        warm(backend, streams.front().mono, threads);
        core::Server server(backend, {.threads = threads, .max_batch = kMaxBatch});
        std::vector<std::future<core::Response>> futures;
        const util::WallTimer wall;
        for (const auto& s : streams) {
            futures.push_back(server.submit(core::Request::view_train(s.mono)));
        }
        for (auto& f : futures) (void)f.get();
        point.mono_steps_per_sec = 1e3 * total_steps / wall.millis();
        server.shutdown();
    }

    // Chunked: the same streams as T/W-step session windows, every
    // window of every stream submitted up front. Windows of one stream
    // serialize (the session contract); distinct streams must still
    // fill the wave in parallel — that parallelism is what the 0.8x
    // gate polices.
    {
        auto backend = make_backend();
        warm(backend, streams.front().mono, threads);
        core::Server server(backend, {.threads = threads, .max_batch = kMaxBatch});
        std::vector<std::future<core::Response>> futures;
        const util::WallTimer wall;
        for (std::size_t s = 0; s < streams.size(); ++s) {
            const auto& windows = streams[s].windows;
            for (std::size_t w = 0; w < windows.size(); ++w) {
                futures.push_back(
                    server.submit(core::Request::view_train(windows[w])
                                      .with_session("stream-" + std::to_string(s),
                                                    /*close=*/w + 1 == windows.size())));
            }
        }
        for (auto& f : futures) (void)f.get();
        point.chunked_steps_per_sec = 1e3 * total_steps / wall.millis();
        server.shutdown();
    }

    point.ratio = point.chunked_steps_per_sec / point.mono_steps_per_sec;
    return point;
}

void write_json(const std::string& path, const std::vector<RatePoint>& rates,
                const std::vector<ThroughputPoint>& throughput, bool bit_identical,
                std::int64_t timesteps, std::size_t latency_streams,
                std::size_t throughput_streams, bool quick, std::size_t threads) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::cerr << "stream_latency: cannot open " << path << "\n";
        std::exit(EXIT_FAILURE);
    }
    out << "{\n  \"bench\": \"stream_latency\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"sensor_size\": " << kSensorSize << ",\n"
        << "  \"total_timesteps\": " << timesteps << ",\n"
        << "  \"window_steps\": " << kWindowSteps << ",\n"
        << "  \"latency_streams\": " << latency_streams << ",\n"
        << "  \"throughput_streams\": " << throughput_streams << ",\n"
        << "  \"bit_identical\": " << (bit_identical ? "true" : "false") << ",\n"
        << "  \"window_latency\": [\n";
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const RatePoint& r = rates[i];
        out << "    {\"rate\": \"" << r.rate << "\", \"backend\": \"" << r.backend
            << "\", \"density\": " << r.density << ", \"windows\": " << r.windows
            << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us << "}"
            << (i + 1 < rates.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"throughput\": [\n";
    for (std::size_t i = 0; i < throughput.size(); ++i) {
        const ThroughputPoint& t = throughput[i];
        out << "    {\"backend\": \"" << t.backend << "\", \"density\": " << t.density
            << ", \"mono_steps_per_sec\": " << t.mono_steps_per_sec
            << ", \"chunked_steps_per_sec\": " << t.chunked_steps_per_sec
            << ", \"ratio\": " << t.ratio << "}"
            << (i + 1 < throughput.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool check = false;
    std::string out_path = "BENCH_STREAM.json";
    std::size_t threads = 4;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else {
            std::cerr << "usage: stream_latency [--quick] [--check] [--out <path>] "
                         "[--threads <n>]\n";
            return EXIT_FAILURE;
        }
    }

    bench::print_header("Streaming-session latency (chunked DVS event windows)");

    const std::int64_t timesteps = quick ? 32 : 64;
    const std::size_t latency_streams = quick ? 2 : 4;
    const std::size_t throughput_streams = quick ? 4 : 8;

    const auto model = stream_model(59);
    snn::FunctionalEngine reference(model);

    util::Table table("stream_latency" + std::string(quick ? " (quick)" : "") +
                      ", sensor " + std::to_string(kSensorSize) + "x" +
                      std::to_string(kSensorSize) + ", T=" + std::to_string(timesteps) +
                      ", W=" + std::to_string(kWindowSteps) +
                      ", threads=" + std::to_string(threads));
    table.header({"rate", "backend", "density %", "windows", "p50 ms", "p99 ms"});

    bool check_failed = false;
    bool bit_identical = true;
    std::vector<RatePoint> rate_points;

    for (const RateSpec& spec : kRates) {
        std::vector<Stream> streams;
        std::vector<std::vector<std::vector<std::int64_t>>> references;
        for (std::size_t s = 0; s < latency_streams; ++s) {
            streams.push_back(make_stream(spec, timesteps, 1000 + 31 * s));
            references.push_back(reference.run(streams.back().mono).logits_per_step);
        }
        const double d = density(streams, timesteps);
        const std::size_t windows = streams.front().windows.size() * streams.size();

        for (const bool use_sia : {false, true}) {
            const std::string name = use_sia ? "sia" : "functional";
            std::shared_ptr<core::Backend> backend;
            if (use_sia) {
                backend = std::make_shared<core::SiaBackend>(model);
            } else {
                backend = std::make_shared<core::FunctionalBackend>(model);
            }
            warm(backend, streams.front().mono, threads);
            const auto latency = measure_window_latency(backend, streams, references,
                                                        threads, bit_identical);
            RatePoint point;
            point.rate = spec.name;
            point.backend = name;
            point.density = d;
            point.windows = latency.count();
            point.p50_us = latency.p50();
            point.p99_us = latency.p99();
            rate_points.push_back(point);
            table.row({spec.name, name, util::cell(100.0 * d, 2),
                       util::cell(static_cast<double>(point.windows), 0),
                       util::cell(point.p50_us / 1e3, 3),
                       util::cell(point.p99_us / 1e3, 3)});
            if (check) {
                const bool lost = point.windows != windows;
                const bool disordered =
                    !(point.p50_us > 0.0) || point.p50_us > point.p99_us + 1e-9;
                if (lost || disordered) {
                    check_failed = true;
                    std::cerr << "CHECK FAILED: rate=" << spec.name << " backend="
                              << name << " windows=" << point.windows << "/" << windows
                              << " p50/p99=" << point.p50_us << "/" << point.p99_us
                              << "\n";
                }
            }
        }
    }
    table.separator();

    // Throughput comparison at the typical (~1%) density.
    const RateSpec& typical = kRates[1];
    std::vector<Stream> load_streams;
    for (std::size_t s = 0; s < throughput_streams; ++s) {
        load_streams.push_back(make_stream(typical, timesteps, 2000 + 17 * s));
    }

    std::vector<ThroughputPoint> throughput;
    // The throughput sections never read per-step logits, so the
    // functional lane drops readout history (the latency section above
    // verifies logits_per_step and keeps the default).
    snn::EngineConfig lean;
    lean.record_readout_history = false;
    for (const bool use_sia : {false, true}) {
        const std::string name = use_sia ? "sia" : "functional";
        const auto make_backend = [&]() -> std::shared_ptr<core::Backend> {
            if (use_sia) return std::make_shared<core::SiaBackend>(model);
            return std::make_shared<core::FunctionalBackend>(model, lean);
        };
        ThroughputPoint point =
            measure_throughput(name, make_backend, load_streams, timesteps, threads);
        if (check && point.ratio < 0.8) {
            // One retry: both sides are sub-second wall-clock samples on
            // a possibly shared box. A real serialization bug (sessions
            // accidentally blocking each other) fails both attempts.
            point = measure_throughput(name, make_backend, load_streams, timesteps,
                                       threads);
        }
        throughput.push_back(point);
        table.row({"throughput", name, util::cell(100.0 * point.density, 2),
                   util::cell(point.mono_steps_per_sec, 0) + " mono st/s",
                   util::cell(point.chunked_steps_per_sec, 0) + " chunk st/s",
                   util::cell(point.ratio, 3) + "x"});
        if (check && point.ratio < 0.8) {
            check_failed = true;
            std::cerr << "CHECK FAILED: backend=" << name << " chunked throughput "
                      << point.chunked_steps_per_sec << " st/s is "
                      << point.ratio << "x monolithic " << point.mono_steps_per_sec
                      << " st/s (floor 0.8x) at density " << point.density << "\n";
        }
    }

    table.print(std::cout);
    write_json(out_path, rate_points, throughput, bit_identical, timesteps,
               latency_streams, throughput_streams, quick, threads);
    std::cout << "wrote " << out_path << "\n";

    if (!bit_identical) {
        std::cerr << "FATAL: chunked streams diverged from the monolithic reference\n";
        return EXIT_FAILURE;
    }
    if (check_failed) {
        std::cerr << "FATAL: streaming-session bench failed its gates\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
}
