// Fig. 6 — Average spike rate across the layers of the converted
// ResNet-18. Paper: overall average ~0.12 spikes/neuron/timestep with no
// significant decreasing trend in deeper layers (a consequence of
// reset-by-subtraction and per-layer thresholds).
#include "bench/common.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main() {
    using namespace sia;
    bench::print_header(
        "Fig. 6: ResNet-18 per-layer average spike rate (paper: overall ~0.12, "
        "flat across depth)");
    util::WallTimer timer;

    const auto trained = bench::train_model(/*resnet=*/true, /*width=*/8);
    const auto profile = core::measure_spike_rates(
        trained.result.snn, trained.data.test.take(60), /*timesteps=*/8,
        trained.encoder());

    util::Table table("average spikes per neuron per timestep");
    table.header({"layer #", "layer", "rate"});
    util::RunningStat depth_trend;
    for (std::size_t l = 0; l < profile.rates.size(); ++l) {
        table.row({util::cell(l + 1), profile.labels[l], util::cell(profile.rates[l], 4)});
        depth_trend.add(profile.rates[l]);
    }
    table.print(std::cout);
    std::cout << "overall average: " << util::cell(profile.overall, 4)
              << "  (paper: ~0.12)\n";

    // The paper's flatness claim: no significant decreasing trend.
    const std::size_t half = profile.rates.size() / 2;
    util::RunningStat front;
    util::RunningStat back;
    for (std::size_t l = 0; l < profile.rates.size(); ++l) {
        (l < half ? front : back).add(profile.rates[l]);
    }
    std::cout << "first-half mean " << util::cell(front.mean(), 4) << " vs second-half "
              << util::cell(back.mean(), 4)
              << " -> no collapse in deep layers (paper: same observation)\n";

    util::CsvWriter csv("fig6_spike_rate_resnet.csv");
    csv.row({"layer", "label", "rate"});
    for (std::size_t l = 0; l < profile.rates.size(); ++l) {
        csv.row({std::to_string(l + 1), profile.labels[l], util::cell(profile.rates[l], 5)});
    }
    std::cout << "series written to fig6_spike_rate_resnet.csv ("
              << util::cell(timer.seconds(), 1) << " s)\n";
    return 0;
}
