// Ablation — weight precision: the paper's reduced-precision claim is
// INT8; this sweep converts the same trained model at 4/6/8-bit weights
// and reports accuracy, quantization error, and weight-memory footprint,
// quantifying the design point DESIGN.md calls out.
#include "bench/common.hpp"
#include "core/convert.hpp"
#include "core/quantize.hpp"

int main() {
    using namespace sia;
    bench::print_header("Ablation: weight precision sweep (VGG-11, T=16)");
    util::WallTimer timer;

    auto trained = bench::train_model(/*resnet=*/false, /*width=*/8);
    const auto encoder = trained.encoder();
    const std::int64_t timesteps = 16;

    util::Table table("accuracy and quantization error by weight precision");
    table.header({"bits", "T=8 acc", "T=16 acc", "mean weight MSE", "rel. memory"});
    for (const int bits : {8, 6, 4, 3}) {
        core::ConvertOptions opts;
        opts.weight_bits = bits;
        opts.host_front_layers = 1;
        const auto model = core::AnnToSnnConverter(opts).convert(trained.model->ir());
        const auto acc =
            core::evaluate_snn_over_time(model, trained.data.test, timesteps, encoder);

        // Mean per-branch quantization MSE across layers at these bits.
        double mse = 0.0;
        int branches = 0;
        const auto ir = trained.model->ir();
        for (const auto& node : ir.nodes) {
            if (node.op != nn::IrOp::kConv || node.conv == nullptr) continue;
            const auto q = core::quantize_weights(node.conv->weight().value.data(), bits);
            mse += q.mse;
            ++branches;
        }
        table.row({util::cell(static_cast<long long>(bits)),
                   util::cell_pct(acc[7] * 100.0, 1), util::cell_pct(acc[15] * 100.0, 1),
                   util::cell(branches > 0 ? mse / branches : 0.0, 8),
                   util::cell(static_cast<double>(bits) / 8.0, 2)});
    }
    table.print(std::cout);
    std::cout << "ANN reference: " << util::cell(trained.result.ann_accuracy * 100.0, 1)
              << "%  |  expected shape: graceful degradation from 8 to 4 bits, "
                 "collapse by 3\n";
    std::cout << "(" << util::cell(timer.seconds(), 1) << " s)\n";
    return 0;
}
