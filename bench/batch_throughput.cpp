// Batched-inference throughput: sequential FunctionalEngine vs
// core::BatchRunner at several thread counts, over a calibrated
// reduced-width VGG-11, plus the cycle-accurate path's resident-batched
// vs per-item-instance schedules (the BRAM-residency amortization).
// Demonstrates the serving-path speedup of the fixed thread pool and
// cross-checks the determinism contract (batched results must equal the
// sequential reference at every thread count and schedule).
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "core/batch_runner.hpp"
#include "core/compiler.hpp"
#include "core/convert.hpp"
#include "sim/sia.hpp"
#include "snn/encoding.hpp"
#include "snn/engine.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace sia;

std::vector<snn::SpikeTrain> make_batch(const snn::SnnModel& model, std::size_t count,
                                        std::int64_t timesteps) {
    util::Rng rng(123);
    std::vector<snn::SpikeTrain> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        tensor::Tensor img(tensor::Shape{1, model.input_channels, model.input_h,
                                         model.input_w});
        for (std::int64_t j = 0; j < img.numel(); ++j) img.flat(j) = rng.uniform();
        batch.push_back(snn::encode_thermometer(img, timesteps));
    }
    return batch;
}

}  // namespace

int main() {
    bench::print_header("Batched inference throughput (BatchRunner vs sequential)");

    nn::VggConfig cfg;
    cfg.width = 8;
    cfg.input_size = 16;
    const auto ann = bench::calibrated_model<nn::Vgg11>(cfg);
    const auto model = core::AnnToSnnConverter(core::ConvertOptions{}).convert(ann->ir());

    const std::size_t batch_size = 32;
    const std::int64_t timesteps = 8;
    const auto batch = make_batch(model, batch_size, timesteps);
    std::vector<core::Request> requests;
    requests.reserve(batch.size());
    for (const auto& train : batch) {
        requests.push_back(core::Request::view_train(train));
    }

    // Sequential reference.
    snn::FunctionalEngine engine(model);
    std::vector<snn::RunResult> reference;
    reference.reserve(batch.size());
    const util::WallTimer seq_timer;
    for (const auto& train : batch) reference.push_back(engine.run(train));
    const double seq_ms = seq_timer.millis();

    util::Table table("BatchRunner throughput, VGG-11 w=8, batch=32, T=8");
    table.header({"threads", "wall_ms", "inputs/s", "speedup", "bit_exact"});
    table.row({"seq", util::cell(seq_ms, 1),
               util::cell(1e3 * static_cast<double>(batch_size) / seq_ms, 1), "1.00",
               "ref"});
    table.separator();

    bool all_exact = true;
    for (const std::size_t threads : {1UL, 2UL, 4UL, 8UL}) {
        core::BatchRunner runner(model, {.threads = threads});
        const auto results = runner.run(requests);
        const auto& stats = runner.last_stats();

        bool exact = results.size() == reference.size();
        for (std::size_t i = 0; exact && i < results.size(); ++i) {
            exact = results[i].logits_per_step == reference[i].logits_per_step &&
                    results[i].spike_counts == reference[i].spike_counts;
        }
        all_exact = all_exact && exact;

        table.row({std::to_string(threads), util::cell(stats.wall_ms, 1),
                   util::cell(stats.inputs_per_sec(), 1),
                   util::cell(seq_ms / stats.wall_ms, 2), exact ? "yes" : "NO"});
    }
    // Stochastic (Poisson-rate) encoding path: same images, per-item RNG
    // streams; thread-count invariance is the determinism claim here.
    std::vector<tensor::Tensor> images;
    util::Rng img_rng(321);
    for (std::size_t i = 0; i < batch_size; ++i) {
        tensor::Tensor img(tensor::Shape{1, model.input_channels, model.input_h,
                                         model.input_w});
        for (std::int64_t j = 0; j < img.numel(); ++j) img.flat(j) = img_rng.uniform();
        images.push_back(std::move(img));
    }
    std::vector<core::Request> poisson_requests;
    poisson_requests.reserve(images.size());
    for (const auto& img : images) {
        poisson_requests.push_back(core::Request::view_poisson(img, timesteps));
    }
    core::BatchRunner ref_runner(model, {.threads = 1});
    const auto poisson_ref = ref_runner.run(poisson_requests);
    for (const std::size_t threads : {2UL, 8UL}) {
        core::BatchRunner runner(model, {.threads = threads});
        const auto results = runner.run(poisson_requests);
        bool exact = results.size() == poisson_ref.size();
        for (std::size_t i = 0; exact && i < results.size(); ++i) {
            exact = results[i].logits_per_step == poisson_ref[i].logits_per_step;
        }
        all_exact = all_exact && exact;
        table.row({std::to_string(threads) + " poisson",
                   util::cell(runner.last_stats().wall_ms, 1),
                   util::cell(runner.last_stats().inputs_per_sec(), 1), "-",
                   exact ? "yes" : "NO"});
    }
    table.print(std::cout);

    // ---- cycle-accurate path: per-item Sia instances vs resident batched ----

    const std::size_t sim_batch_size = 16;
    const std::vector<snn::SpikeTrain> sim_batch(
        batch.begin(), batch.begin() + static_cast<std::ptrdiff_t>(sim_batch_size));
    std::vector<core::Request> sim_requests;
    sim_requests.reserve(sim_batch.size());
    for (const auto& train : sim_batch) {
        sim_requests.push_back(core::Request::view_train(train));
    }
    const sim::SiaConfig sia_config;

    // Sequential reference: one resident instance, inputs one at a time
    // (also the bit-exactness referee for both schedules).
    const auto program = core::SiaCompiler(sia_config).compile(model);
    sim::Sia ref_sia(sia_config, model, program);
    std::vector<sim::SiaRunResult> sim_ref;
    sim_ref.reserve(sim_batch.size());
    const util::WallTimer sim_seq_timer;
    for (const auto& train : sim_batch) sim_ref.push_back(ref_sia.run(train));
    const double sim_seq_ms = sim_seq_timer.millis();

    const auto sim_exact = [&](const std::vector<core::Response>& results) {
        if (results.size() != sim_ref.size()) return false;
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (results[i].logits_per_step != sim_ref[i].logits_per_step ||
                results[i].spike_counts != sim_ref[i].spike_counts ||
                results[i].total_cycles() != sim_ref[i].total_cycles()) {
                return false;
            }
        }
        return true;
    };

    util::Table sim_table("SiaBackend schedules, VGG-11 w=8, batch=16, T=8");
    sim_table.header({"schedule", "threads", "wall_ms", "inputs/s", "setup_ms",
                      "run_ms", "bit_exact"});
    sim_table.row({"seq run()", "-", util::cell(sim_seq_ms, 1),
                   util::cell(1e3 * static_cast<double>(sim_batch_size) / sim_seq_ms, 1),
                   "-", "-", "ref"});
    sim_table.separator();

    sim::SiaBatchStats residency{};
    for (const std::size_t threads : {1UL, 4UL}) {
        for (const auto schedule :
             {core::SimSchedule::kPerItem, core::SimSchedule::kResident}) {
            const bool resident = schedule == core::SimSchedule::kResident;
            core::BatchRunner runner(
                std::make_shared<core::SiaBackend>(model, sia_config, schedule),
                {.threads = threads});
            const auto results = runner.run(sim_requests);
            const auto& stats = runner.last_stats();
            const bool exact = sim_exact(results);
            all_exact = all_exact && exact;
            if (resident) residency = runner.last_sim_batch_stats();
            sim_table.row({resident ? "resident" : "per-item",
                           std::to_string(threads), util::cell(stats.wall_ms, 1),
                           util::cell(stats.inputs_per_sec(), 1),
                           util::cell(stats.setup_ms, 2), util::cell(stats.run_ms, 1),
                           exact ? "yes" : "NO"});
        }
    }
    sim_table.print(std::cout);

    std::cout << "simulated residency (resident, threads=4): " << residency.waves
              << " waves x " << residency.banks << " membrane banks ("
              << residency.membrane_slice_bytes / 1024 << " kB/context, membranes "
              << (residency.membrane_resident ? "fit" : "DO NOT fit — host-mirrored")
              << "), kernels " << residency.weight_bytes_streamed / 1024
              << " kB streamed vs " << residency.weight_bytes_sequential / 1024
              << " kB sequential, " << residency.resident_cycles / 1000
              << " kcycles vs " << residency.sequential_cycles / 1000 << " kcycles ("
              << util::cell(residency.amortization(), 2) << "x amortization)\n";

    if (!all_exact) {
        std::cerr << "FATAL: batched results diverged from sequential reference\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
}
