// Section V projection — TSMC 40 nm ASIC: 192 GOPS @ 500 MHz, 11 mm^2,
// 2.17 W, and the future-work 600 GOPS/W trajectory discussion.
#include "bench/common.hpp"
#include "hw/asic.hpp"

int main() {
    using namespace sia;
    bench::print_header("ASIC projection (Section V): TSMC 40 nm @ 500 MHz");

    const sim::SiaConfig fpga;
    const hw::AsicProjection proj = hw::project_asic(fpga);

    util::Table table("projection vs paper");
    table.header({"metric", "projected", "paper"});
    table.row({"clock (MHz)", util::cell(proj.clock_mhz, 0), "500"});
    table.row({"throughput (GOPS)", util::cell(proj.throughput_gops, 1), "192"});
    table.row({"area (mm^2)", util::cell(proj.area_mm2, 2), "11"});
    table.row({"power (W)", util::cell(proj.power_w, 2), "2.17"});
    table.row({"efficiency (GOPS/W)", util::cell(proj.gops_per_watt, 1),
               "(future-work target: 600)"});
    table.print(std::cout);

    // Sensitivity: what a voltage/frequency-scaled variant would need to
    // reach the stated 600 GOPS/W future-work target.
    hw::AsicConfig tuned;
    tuned.dynamic_watts_per_gops = 0.0095 / 6.0;  // ~6x energy/op reduction
    tuned.leakage_watts = 0.05;
    const auto future = hw::project_asic(fpga, tuned);
    std::cout << "future-work sensitivity: reaching ~600 GOPS/W requires ~6x lower\n"
                 "energy/op + leakage cuts -> this config projects "
              << util::cell(future.gops_per_watt, 0) << " GOPS/W\n";
    return 0;
}
