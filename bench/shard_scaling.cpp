// Multi-accelerator shard scaling: a stride-2 conv pyramid + small FC
// head run through sim::SiaCluster at 1/2/4/8 shards under both
// partition strategies (layer-pipelined and channel-parallel), with
// the single-Sia serial cycle count as the baseline. Every cluster
// run's logits are asserted bit-identical to single-Sia execution
// before its timing row counts — a wrong-but-fast shard plan is a
// bench failure, not a data point.
//
// Prints modeled makespan / speedup / transfer exposure per
// (partition, shards) and emits machine-readable BENCH_SHARD.json.
// With --check, exits nonzero if 4-shard pipelined execution fails to
// reach 2x the single-Sia baseline (the CI scaling-smoke gate).
//
// Flags: --quick (smaller model + batch), --check, --out <path>.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "sim/sia.hpp"
#include "sim/sia_cluster.hpp"
#include "snn/model.hpp"
#include "snn/spike.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace sia;

/// Conv pyramid: 16x16 input halved every other layer down to 2x2,
/// then a small FC head. Deep enough that a 4-stage pipeline cut has
/// real work per stage, and wide enough (channels) that channel
/// slices stay balanced at 8 shards.
snn::SnnModel pyramid_model(std::int64_t channels, std::uint64_t seed) {
    util::Rng rng(seed);
    snn::SnnModel model;
    model.name = "pyramid_c" + std::to_string(channels);
    model.input_channels = 2;
    model.input_h = 16;
    model.input_w = 16;

    struct ConvSpec {
        std::int64_t stride;
        std::int64_t in_hw;
    };
    // Strides: 1,2,1,2,1,2,1,2 — 16x16 halved down to 1x1, so the FC
    // head reads `channels` features: its PS-word weight streaming
    // (564 cycles/word, every timestep) must not dwarf the conv
    // stages, or the pipeline bottlenecks on one uncuttable layer.
    const std::vector<ConvSpec> specs = {{1, 16}, {2, 16}, {1, 8}, {2, 8},
                                         {1, 4},  {2, 4},  {1, 2}, {2, 2}};
    std::int64_t in_c = model.input_channels;
    for (std::size_t d = 0; d < specs.size(); ++d) {
        const ConvSpec& spec = specs[d];
        snn::SnnLayer layer;
        layer.op = snn::LayerOp::kConv;
        layer.label = "conv" + std::to_string(d);
        layer.input = static_cast<int>(d) - 1;
        auto& b = layer.main;
        b.in_channels = in_c;
        b.out_channels = channels;
        b.kernel = 3;
        b.stride = spec.stride;
        b.padding = 1;
        b.weights.resize(static_cast<std::size_t>(in_c * channels * 9));
        for (auto& w : b.weights) w = static_cast<std::int8_t>(rng.integer(-127, 127));
        b.gain.resize(static_cast<std::size_t>(channels));
        b.bias.resize(static_cast<std::size_t>(channels));
        for (auto& g : b.gain) g = static_cast<std::int16_t>(rng.integer(50, 2000));
        for (auto& h : b.bias) h = static_cast<std::int16_t>(rng.integer(-100, 100));
        layer.in_h = spec.in_hw;
        layer.in_w = spec.in_hw;
        layer.out_h = (spec.in_hw + 2 - 3) / spec.stride + 1;
        layer.out_w = layer.out_h;
        layer.out_channels = channels;
        model.layers.push_back(std::move(layer));
        in_c = channels;
    }

    snn::SnnLayer fc;
    fc.op = snn::LayerOp::kLinear;
    fc.label = "fc";
    fc.input = static_cast<int>(specs.size()) - 1;
    fc.spiking = false;
    fc.main.in_features = channels;
    fc.main.out_features = 10;
    fc.main.weights.resize(static_cast<std::size_t>(fc.main.in_features * 10));
    for (auto& w : fc.main.weights) w = static_cast<std::int8_t>(rng.integer(-64, 64));
    fc.main.gain.assign(10, 256);
    fc.main.bias.assign(10, 0);
    fc.out_channels = 10;
    model.layers.push_back(std::move(fc));
    model.classes = 10;
    model.validate();
    return model;
}

std::vector<snn::SpikeTrain> random_batch(const snn::SnnModel& model, std::size_t count,
                                          std::int64_t timesteps, std::uint64_t seed) {
    std::vector<snn::SpikeTrain> batch;
    batch.reserve(count);
    util::Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        snn::SpikeTrain train(static_cast<std::size_t>(timesteps),
                              snn::SpikeMap(model.input_channels, model.input_h,
                                            model.input_w));
        for (auto& frame : train) {
            for (std::int64_t j = 0; j < frame.size(); ++j) {
                frame.set_flat(j, rng.bernoulli(0.2));
            }
        }
        batch.push_back(std::move(train));
    }
    return batch;
}

struct ResultRow {
    std::string partition;
    std::int64_t shards_requested = 0;
    std::int64_t shards_effective = 0;
    bool double_buffered = true;
    sim::ShardStats stats;
    double speedup = 0.0;  ///< measured single-Sia serial cycles / makespan
};

void write_json(const std::string& path, const std::vector<ResultRow>& rows,
                bool quick, std::size_t items, std::int64_t timesteps,
                std::int64_t channels, std::int64_t baseline_cycles) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::cerr << "shard_scaling: cannot open " << path << "\n";
        std::exit(EXIT_FAILURE);
    }
    out << "{\n  \"bench\": \"shard_scaling\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"model\": \"pyramid_c" << channels << "\",\n"
        << "  \"items\": " << items << ",\n"
        << "  \"timesteps\": " << timesteps << ",\n"
        << "  \"single_sia_cycles\": " << baseline_cycles << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ResultRow& r = rows[i];
        const sim::ShardStats& s = r.stats;
        out << "    {\"partition\": \"" << r.partition
            << "\", \"shards_requested\": " << r.shards_requested
            << ", \"shards_effective\": " << r.shards_effective
            << ", \"double_buffered\": " << (r.double_buffered ? "true" : "false")
            << ", \"makespan_cycles\": " << s.makespan_cycles
            << ", \"speedup\": " << r.speedup
            << ", \"compute_cycles\": " << s.compute_cycles
            << ", \"transfer_bytes\": " << s.transfer_bytes
            << ", \"transfer_cycles\": " << s.transfer_cycles
            << ", \"transfer_stall_cycles\": " << s.transfer_stall_cycles
            << ", \"fill_cycles\": " << s.fill_cycles
            << ", \"drain_cycles\": " << s.drain_cycles << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool check = false;
    std::string out_path = "BENCH_SHARD.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: shard_scaling [--quick] [--check] [--out <path>]\n";
            return EXIT_FAILURE;
        }
    }

    const std::int64_t channels = quick ? 16 : 32;
    const std::size_t items = quick ? 12 : 24;
    const std::int64_t timesteps = quick ? 4 : 8;

    const sim::SiaConfig config;
    const core::SiaCompiler compiler(config);
    const snn::SnnModel model = pyramid_model(channels, 0x51A0ULL);
    const auto inputs = random_batch(model, items, timesteps, 0xBA7C4ULL);

    // Single-Sia baseline: the serial modeled cycles the cluster rows
    // are scored against, plus the reference logits for bit-identity.
    const auto program = compiler.compile(model);
    sim::Sia single(config, model, program);
    std::int64_t baseline_cycles = 0;
    std::vector<sim::SiaRunResult> ref;
    ref.reserve(items);
    for (const auto& train : inputs) {
        ref.push_back(single.run(train));
        baseline_cycles += ref.back().total_cycles();
    }

    std::cout << "==============================================================\n"
              << "Shard scaling: " << model.name << ", " << model.layers.size()
              << " layers, batch " << items << ", T=" << timesteps << "\n"
              << "(modeled cycles; single-Sia serial baseline "
              << baseline_cycles << " cycles = "
              << util::cell(config.cycles_to_ms(baseline_cycles), 1) << " ms)\n"
              << "==============================================================\n";

    util::Table table("shard_scaling" + std::string(quick ? " (quick)" : ""));
    table.header({"partition", "shards", "eff", "makespan", "speedup", "xfer stall",
                  "fill", "drain", "items/s"});

    std::vector<ResultRow> rows;
    double pipelined4_speedup = 0.0;
    for (const auto partition :
         {sim::ShardPartition::kPipeline, sim::ShardPartition::kChannel}) {
        for (const std::int64_t shards : {1, 2, 4, 8}) {
            // The 4-shard pipelined point is also measured without
            // double-buffering to expose what the overlap buys.
            const bool contrast_db =
                partition == sim::ShardPartition::kPipeline && shards == 4;
            for (const bool double_buffer : contrast_db
                                                ? std::vector<bool>{true, false}
                                                : std::vector<bool>{true}) {
                const auto plan = compiler.compile_sharded(
                    model, {.partition = partition,
                            .shards = shards,
                            .est_timesteps = timesteps});
                sim::SiaCluster cluster(config, model, plan,
                                        {.double_buffer = double_buffer});
                const auto results = cluster.run_batch(inputs);
                for (std::size_t i = 0; i < results.size(); ++i) {
                    if (results[i].logits_per_step != ref[i].logits_per_step ||
                        results[i].spike_counts != ref[i].spike_counts) {
                        std::cerr << "FATAL: " << sim::to_string(partition) << " x"
                                  << shards << " logits diverge from single-Sia on "
                                     "item " << i << "\n";
                        return EXIT_FAILURE;
                    }
                }

                ResultRow row;
                row.partition = sim::to_string(partition);
                row.shards_requested = shards;
                row.shards_effective = plan.effective_shards();
                row.double_buffered = double_buffer;
                row.stats = cluster.last_stats();
                row.speedup = static_cast<double>(baseline_cycles) /
                              static_cast<double>(row.stats.makespan_cycles);
                rows.push_back(row);

                if (partition == sim::ShardPartition::kPipeline && shards == 4 &&
                    double_buffer) {
                    pipelined4_speedup = row.speedup;
                }
                table.row({row.partition + (double_buffer ? "" : " (no db)"),
                           util::cell(shards), util::cell(row.shards_effective),
                           util::cell(row.stats.makespan_cycles),
                           util::cell(row.speedup, 2) + "x",
                           util::cell(row.stats.transfer_stall_cycles),
                           util::cell(row.stats.fill_cycles),
                           util::cell(row.stats.drain_cycles),
                           util::cell(row.stats.items_per_second(config), 1)});
            }
        }
        table.separator();
    }
    table.print(std::cout);

    write_json(out_path, rows, quick, items, timesteps, channels, baseline_cycles);
    std::cout << "wrote " << out_path << "\n";

    if (check && pipelined4_speedup < 2.0) {
        std::cerr << "CHECK FAILED: 4-shard pipelined speedup "
                  << pipelined4_speedup << "x < 2.0x over single-Sia\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
}
