// Table II — Latency as a function of kernel size: a single 64-channel
// conv layer on a 32x32 input, kernels 3x3 / 5x5 / 7x7 / 11x11, T=8.
//
// The paper's reconfigurability demonstration: latency grows only mildly
// with kernel size because the fixed per-layer costs dominate and the
// event-driven window schedule (3 cycles per row segment) amortises.
#include "bench/common.hpp"
#include "core/compiler.hpp"
#include "core/convert.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "sim/sia.hpp"
#include "snn/encoding.hpp"

namespace {

using namespace sia;

/// Single conv layer IR: in 3ch 32x32 -> 64ch, kernel k.
snn::SnnModel single_conv_model(std::int64_t kernel, util::Rng& rng,
                                std::vector<std::unique_ptr<nn::Conv2d>>& convs,
                                std::vector<std::unique_ptr<nn::BatchNorm2d>>& bns,
                                std::vector<std::unique_ptr<nn::Activation>>& acts) {
    const tensor::ConvGeometry g{3, 64, kernel, 1, kernel / 2};
    convs.push_back(std::make_unique<nn::Conv2d>(g, rng, "conv"));
    bns.push_back(std::make_unique<nn::BatchNorm2d>(64, "bn"));
    acts.push_back(std::make_unique<nn::Activation>("act"));
    auto& conv = *convs.back();
    auto& bn = *bns.back();
    auto& act = *acts.back();

    tensor::Tensor x(tensor::Shape{2, 3, 32, 32});
    for (std::int64_t i = 0; i < x.numel(); ++i) x.flat(i) = rng.uniform(0.0F, 1.0F);
    for (int rep = 0; rep < 3; ++rep) (void)bn.forward(conv.forward(x, true), true);
    act.begin_calibration();
    (void)act.forward(bn.forward(conv.forward(x, false), false), false);
    act.end_calibration();
    act.enable_quant(2);

    nn::NetworkIR ir;
    ir.model_name = "conv" + std::to_string(kernel);
    ir.input_channels = 3;
    ir.input_h = 32;
    ir.input_w = 32;
    nn::IrNode in;
    in.op = nn::IrOp::kInput;
    in.out_channels = 3;
    in.out_h = 32;
    in.out_w = 32;
    ir.nodes.push_back(in);
    nn::IrNode node;
    node.op = nn::IrOp::kConv;
    node.label = "conv";
    node.input = 0;
    node.conv = &conv;
    node.bn = &bn;
    node.act = &act;
    node.out_channels = 64;
    node.out_h = 32;
    node.out_w = 32;
    ir.nodes.push_back(node);
    return core::AnnToSnnConverter().convert(ir);
}

}  // namespace

int main() {
    bench::print_header(
        "Table II: latency vs kernel size — Conv(k x k, 64) on 32x32, T=8");

    const std::vector<std::pair<std::int64_t, double>> cases = {
        {3, 0.9479}, {5, 0.95}, {7, 0.9677}, {11, 0.9839}};

    const sim::SiaConfig cfg;
    util::Rng rng(13);
    tensor::Tensor img(tensor::Shape{1, 3, 32, 32});
    // Input activity in the converted-SNN regime (~0.15 spikes/step,
    // Fig. 6/8) rather than dense pixels.
    for (std::int64_t i = 0; i < img.numel(); ++i) img.flat(i) = rng.uniform(0.0F, 0.3F);
    const auto input = snn::encode_thermometer(img, 8);

    util::Table table("single-layer latency by kernel size");
    table.header({"kernel", "window cycles", "measured (ms)", "paper (ms)",
                  "vs 3x3 (ms)"});
    double base_ms = 0.0;
    for (const auto& [k, paper_ms] : cases) {
        std::vector<std::unique_ptr<nn::Conv2d>> convs;
        std::vector<std::unique_ptr<nn::BatchNorm2d>> bns;
        std::vector<std::unique_ptr<nn::Activation>> acts;
        util::Rng model_rng(17);
        const auto model = single_conv_model(k, model_rng, convs, bns, acts);
        const auto program = core::SiaCompiler(cfg).compile(model);
        sim::Sia sia(cfg, model, program);
        const auto res = sia.run(input);
        const double ms = res.total_ms(cfg);
        if (k == 3) base_ms = ms;
        table.row({util::cell(k), util::cell(sim::SiaConfig::window_cycles(k)),
                   util::cell(ms, 4), util::cell(paper_ms, 4),
                   util::cell(ms - base_ms, 4)});
    }
    table.print(std::cout);
    std::cout << "shape check: latency grows mildly with kernel size because the\n"
                 "fixed per-layer cost dominates the event-driven window schedule\n"
                 "(paper: 0.9479 -> 0.9839 ms from 3x3 to 11x11).\n";
    return 0;
}
