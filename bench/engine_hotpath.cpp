// FunctionalEngine hot-path bench: dense gather vs scatter vs
// density-adaptive kernel dispatch, swept over spike density x layer
// shape (VGG-11 / ResNet-18 conv blocks + a pool-unrolled-style FC),
// plus the fire-stage sweep — scalar per-neuron loop vs the fused
// vectorized aggregate+fire kernels, both under adaptive dispatch.
//
// Prints steps/s per (shape, density, mode) and emits machine-readable
// BENCH_ENGINE.json (dispatch rows in "results", the fire-stage sweep
// in "fire_results"). With --check, exits nonzero if, on any conv
// shape at 5% density, adaptive dispatch is slower than dense OR the
// fused fire stage is slower than the scalar baseline (the CI
// perf-smoke gates: at paper-realistic spike rates neither
// optimization may regress below its baseline).
//
// Flags: --quick (reduced sweep), --check, --out <path>,
//        --min-ms <per-measurement milliseconds>.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "snn/engine.hpp"
#include "snn/model.hpp"
#include "snn/spike.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace sia;

struct BenchShape {
    std::string name;
    bool conv = true;
    // Conv geometry.
    std::int64_t ic = 0, oc = 0, in_hw = 0, kernel = 3, stride = 1, padding = 1;
    // Linear geometry (input is [1, in_feat_h, in_feat_w]).
    std::int64_t in_feat_h = 0, in_feat_w = 0, out_features = 0;
};

snn::SnnModel make_model(const BenchShape& s, util::Rng& rng) {
    snn::SnnModel model;
    model.name = s.name;
    model.classes = 1;
    snn::SnnLayer layer;
    layer.label = s.name;
    layer.input = -1;
    layer.spiking = true;
    if (s.conv) {
        model.input_channels = s.ic;
        model.input_h = s.in_hw;
        model.input_w = s.in_hw;
        layer.op = snn::LayerOp::kConv;
        layer.main.in_channels = s.ic;
        layer.main.out_channels = s.oc;
        layer.main.kernel = s.kernel;
        layer.main.stride = s.stride;
        layer.main.padding = s.padding;
        layer.main.weights.resize(
            static_cast<std::size_t>(s.oc * s.ic * s.kernel * s.kernel));
        layer.main.gain.assign(static_cast<std::size_t>(s.oc), 256);
        layer.main.bias.assign(static_cast<std::size_t>(s.oc), 0);
        layer.out_channels = s.oc;
        layer.out_h = (s.in_hw + 2 * s.padding - s.kernel) / s.stride + 1;
        layer.out_w = layer.out_h;
        layer.in_h = s.in_hw;
        layer.in_w = s.in_hw;
    } else {
        model.input_channels = 1;
        model.input_h = s.in_feat_h;
        model.input_w = s.in_feat_w;
        layer.op = snn::LayerOp::kLinear;
        layer.main.in_features = s.in_feat_h * s.in_feat_w;
        layer.main.out_features = s.out_features;
        layer.main.weights.resize(
            static_cast<std::size_t>(layer.main.in_features * s.out_features));
        layer.main.gain.assign(static_cast<std::size_t>(s.out_features), 256);
        layer.main.bias.assign(static_cast<std::size_t>(s.out_features), 0);
        layer.out_channels = s.out_features;
    }
    for (auto& w : layer.main.weights) {
        w = static_cast<std::int8_t>(rng.integer(-32, 31));
    }
    model.layers.push_back(std::move(layer));
    return model;
}

std::vector<snn::SpikeMap> make_inputs(const snn::SnnModel& model, double density,
                                       std::int64_t timesteps, util::Rng& rng) {
    std::vector<snn::SpikeMap> inputs(
        static_cast<std::size_t>(timesteps),
        snn::SpikeMap(model.input_channels, model.input_h, model.input_w));
    for (auto& map : inputs) {
        for (std::int64_t i = 0; i < map.size(); ++i) {
            if (rng.bernoulli(density)) map.set_flat(i, true);
        }
    }
    return inputs;
}

struct Measurement {
    double steps_per_sec = 0.0;
    double scatter_fraction = 0.0;  ///< share of steps the engine ran via scatter
};

Measurement measure(const snn::SnnModel& model, snn::EngineConfig config,
                    const std::vector<snn::SpikeMap>& inputs, double min_ms) {
    snn::FunctionalEngine engine(model, config);
    for (const auto& in : inputs) engine.step(in);  // warm caches + page in
    // Best of 3 independent reps: a single scheduler stall inside one
    // rep cannot poison the reading (measurements run on shared CI
    // runners, and a fast step here is microseconds).
    double best_sps = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const util::WallTimer timer;
        std::int64_t steps = 0;
        double elapsed = 0.0;
        do {
            for (const auto& in : inputs) engine.step(in);
            steps += static_cast<std::int64_t>(inputs.size());
            elapsed = timer.millis();
        } while (elapsed < min_ms);
        best_sps = std::max(best_sps, 1e3 * static_cast<double>(steps) / elapsed);
    }
    const auto& d = engine.dispatch_stats(0);
    const std::int64_t total = d.dense_steps + d.scatter_steps;
    return {.steps_per_sec = best_sps,
            .scatter_fraction = total > 0 ? static_cast<double>(d.scatter_steps) /
                                                static_cast<double>(total)
                                          : 0.0};
}

struct ResultRow {
    std::string shape;
    bool conv = true;
    double density = 0.0;
    double measured_density = 0.0;
    double dense_sps = 0.0;
    double scatter_sps = 0.0;
    double adaptive_sps = 0.0;
    double adaptive_scatter_fraction = 0.0;
    /// Fire-stage sweep (both under adaptive psum dispatch): the scalar
    /// per-neuron loop vs the fused vector kernels. vector_fire_sps is
    /// the same configuration as adaptive_sps and reuses its reading.
    double scalar_fire_sps = 0.0;
    double vector_fire_sps = 0.0;
};

void write_json(const std::string& path, const std::vector<ResultRow>& rows, bool quick,
                double threshold) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::cerr << "engine_hotpath: cannot open " << path << "\n";
        std::exit(EXIT_FAILURE);
    }
    out << "{\n  \"bench\": \"engine_hotpath\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"scatter_density_threshold\": " << threshold << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ResultRow& r = rows[i];
        out << "    {\"shape\": \"" << r.shape << "\", \"kind\": \""
            << (r.conv ? "conv" : "linear") << "\", \"density\": " << r.density
            << ", \"measured_density\": " << r.measured_density
            << ", \"dense_steps_per_sec\": " << r.dense_sps
            << ", \"scatter_steps_per_sec\": " << r.scatter_sps
            << ", \"adaptive_steps_per_sec\": " << r.adaptive_sps
            << ", \"adaptive_scatter_fraction\": " << r.adaptive_scatter_fraction
            << ", \"scatter_speedup\": " << (r.dense_sps > 0 ? r.scatter_sps / r.dense_sps : 0.0)
            << ", \"adaptive_speedup\": " << (r.dense_sps > 0 ? r.adaptive_sps / r.dense_sps : 0.0)
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"fire_results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ResultRow& r = rows[i];
        out << "    {\"shape\": \"" << r.shape << "\", \"kind\": \""
            << (r.conv ? "conv" : "linear") << "\", \"density\": " << r.density
            << ", \"scalar_fire_steps_per_sec\": " << r.scalar_fire_sps
            << ", \"vector_fire_steps_per_sec\": " << r.vector_fire_sps
            << ", \"fire_speedup\": "
            << (r.scalar_fire_sps > 0 ? r.vector_fire_sps / r.scalar_fire_sps : 0.0)
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool check = false;
    double min_ms = 0.0;  // 0 = pick by sweep size
    std::string out_path = "BENCH_ENGINE.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--min-ms") == 0 && i + 1 < argc) {
            min_ms = std::atof(argv[++i]);
        } else {
            std::cerr << "usage: engine_hotpath [--quick] [--check] [--out <path>] "
                         "[--min-ms <ms>]\n";
            return EXIT_FAILURE;
        }
    }
    if (min_ms <= 0.0) min_ms = quick ? 60.0 : 300.0;

    std::vector<BenchShape> shapes = {
        {.name = "vgg_conv3x3_64c_32px", .ic = 64, .oc = 64, .in_hw = 32},
        {.name = "vgg_conv3x3_128c_16px", .ic = 128, .oc = 128, .in_hw = 16},
        {.name = "vgg_conv3x3_256c_8px", .ic = 256, .oc = 256, .in_hw = 8},
        {.name = "res_down3x3_64to128_s2",
         .ic = 64,
         .oc = 128,
         .in_hw = 32,
         .stride = 2},
        {.name = "fc_4096to512",
         .conv = false,
         .in_feat_h = 64,
         .in_feat_w = 64,
         .out_features = 512},
    };
    std::vector<double> densities = {0.01, 0.05, 0.10, 0.15, 0.25, 0.50};
    if (quick) {
        shapes = {shapes[0], shapes[4]};  // headline VGG conv block + the FC
        densities = {0.05, 0.25};
    }

    const snn::EngineConfig adaptive;  // defaults: kAdaptive + vector fire
    const snn::EngineConfig scalar_fire{.fire = snn::FirePath::kScalar};
    std::cout << "==============================================================\n"
              << "Engine hot path: dense vs scatter vs adaptive dispatch,\n"
              << "scalar vs fused-vector fire stage\n"
              << "(steps/s of FunctionalEngine::step, T=16 inputs per pass,\n"
              << " adaptive threshold " << adaptive.scatter_density_threshold << ")\n"
              << "==============================================================\n";

    std::vector<ResultRow> rows;
    util::Table table("engine_hotpath" + std::string(quick ? " (quick)" : ""));
    table.header({"shape", "density", "dense st/s", "scatter st/s", "adaptive st/s",
                  "adapt path", "speedup"});
    util::Table fire_table("fire stage: scalar loop vs fused vector kernels "
                           "(adaptive dispatch)");
    fire_table.header({"shape", "density", "scalar st/s", "vector st/s", "speedup"});

    bool check_failed = false;
    for (const BenchShape& shape : shapes) {
        util::Rng rng(0xE7E47ULL);
        const snn::SnnModel model = make_model(shape, rng);
        for (const double density : densities) {
            const auto inputs = make_inputs(model, density, 16, rng);
            std::int64_t spikes = 0;
            std::int64_t sites = 0;
            for (const auto& in : inputs) {
                spikes += in.count();
                sites += in.size();
            }
            ResultRow row;
            row.shape = shape.name;
            row.conv = shape.conv;
            row.density = density;
            row.measured_density =
                sites > 0 ? static_cast<double>(spikes) / static_cast<double>(sites) : 0.0;
            row.dense_sps =
                measure(model, {.dispatch = snn::DispatchMode::kDense}, inputs, min_ms)
                    .steps_per_sec;
            row.scatter_sps =
                measure(model, {.dispatch = snn::DispatchMode::kScatter}, inputs, min_ms)
                    .steps_per_sec;
            const Measurement ad = measure(model, adaptive, inputs, min_ms);
            row.adaptive_sps = ad.steps_per_sec;
            row.adaptive_scatter_fraction = ad.scatter_fraction;
            // Fire-stage sweep: same adaptive psum dispatch, scalar
            // fire loop vs the fused kernels (= the adaptive reading).
            row.scalar_fire_sps = measure(model, scalar_fire, inputs, min_ms).steps_per_sec;
            row.vector_fire_sps = row.adaptive_sps;
            rows.push_back(row);

            table.row({shape.name, util::cell(density, 2), util::cell(row.dense_sps, 0),
                       util::cell(row.scatter_sps, 0), util::cell(row.adaptive_sps, 0),
                       ad.scatter_fraction >= 0.5 ? "scatter" : "dense",
                       util::cell(row.adaptive_sps / row.dense_sps, 2) + "x"});
            fire_table.row({shape.name, util::cell(density, 2),
                            util::cell(row.scalar_fire_sps, 0),
                            util::cell(row.vector_fire_sps, 0),
                            util::cell(row.vector_fire_sps / row.scalar_fire_sps, 2) +
                                "x"});

            if (check && shape.conv && density <= 0.05 + 1e-9) {
                if (row.adaptive_sps < row.dense_sps) {
                    check_failed = true;
                    std::cerr << "CHECK FAILED: adaptive (" << row.adaptive_sps
                              << " steps/s) slower than dense (" << row.dense_sps
                              << " steps/s) on " << shape.name << " at density "
                              << density << "\n";
                }
                if (row.vector_fire_sps < row.scalar_fire_sps) {
                    check_failed = true;
                    std::cerr << "CHECK FAILED: fused fire (" << row.vector_fire_sps
                              << " steps/s) slower than scalar fire ("
                              << row.scalar_fire_sps << " steps/s) on " << shape.name
                              << " at density " << density << "\n";
                }
            }
        }
        table.separator();
        fire_table.separator();
    }
    table.print(std::cout);
    fire_table.print(std::cout);

    write_json(out_path, rows, quick, adaptive.scatter_density_threshold);
    std::cout << "wrote " << out_path << "\n";

    if (check_failed) {
        std::cerr << "FATAL: a hot-path optimization lost to its baseline at <=5% "
                     "density (see CHECK FAILED lines)\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
}
