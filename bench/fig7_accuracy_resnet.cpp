// Fig. 7 — Classification accuracy of the 8-bit ResNet-18 SNN as a
// function of spike timesteps, with the FP32 ANN and quantized-ANN
// reference lines.
//
// Paper (CIFAR-10, width 64, GPU-trained): ANN 95.83%, quantized ANN
// 94.37%, SNN 94.71% — SNN exceeds the quantized ANN after ~8 timesteps
// and settles within 1% of the ANN. Here the same pipeline runs on the
// synthetic CIFAR substitute at reduced width (see DESIGN.md); the claim
// under reproduction is the curve SHAPE: SNN rises with T, crosses the
// quantized-ANN line, and settles within ~1 point of the ANN.
#include "bench/common.hpp"
#include "util/csv.hpp"

int main() {
    using namespace sia;
    bench::print_header(
        "Fig. 7: ResNet-18 SNN accuracy vs timesteps (paper: ANN 95.83 / "
        "QANN 94.37 / SNN 94.71 @CIFAR-10)");
    util::WallTimer timer;

    const auto trained = bench::train_model(/*resnet=*/true, /*width=*/8);
    const std::int64_t timesteps = 30;
    const auto acc = core::evaluate_snn_over_time(
        trained.result.snn, trained.data.test, timesteps, trained.encoder());

    const double ann = trained.result.ann_accuracy * 100.0;
    const double qann = trained.result.qann_accuracy * 100.0;
    std::cout << "ANN (FP32)          : " << util::cell(ann, 2) << "%\n";
    std::cout << "ANN (quantized, L=2): " << util::cell(qann, 2) << "%\n";

    util::Table table("SNN accuracy vs timesteps (synthetic substitute)");
    table.header({"T", "SNN acc", "vs QANN", "vs ANN"});
    std::int64_t crossover = -1;
    for (std::int64_t t = 0; t < timesteps; ++t) {
        const double a = acc[static_cast<std::size_t>(t)] * 100.0;
        if (crossover < 0 && a >= qann) crossover = t + 1;
        table.row({util::cell(t + 1), util::cell_pct(a),
                   util::cell(a - qann, 2), util::cell(a - ann, 2)});
    }
    table.print(std::cout);
    std::cout << "SNN crosses the quantized-ANN line at T="
              << (crossover > 0 ? std::to_string(crossover) : std::string(">30"))
              << "  (paper: ~8)\n";
    std::cout << "final SNN-vs-ANN gap: "
              << util::cell(acc.back() * 100.0 - ann, 2) << " points (paper: <1)\n";

    util::CsvWriter csv("fig7_accuracy_resnet.csv");
    csv.row({"timesteps", "snn_acc", "ann_acc", "qann_acc"});
    for (std::int64_t t = 0; t < timesteps; ++t) {
        csv.row({std::to_string(t + 1),
                 util::cell(acc[static_cast<std::size_t>(t)] * 100.0, 3),
                 util::cell(ann, 3), util::cell(qann, 3)});
    }
    std::cout << "series written to fig7_accuracy_resnet.csv ("
              << util::cell(timer.seconds(), 1) << " s)\n";
    return 0;
}
