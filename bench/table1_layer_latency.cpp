// Table I — Layer-wise latency for the 8-bit ResNet-18 and VGG-11 on the
// (simulated) PYNQ-Z2 SIA at 100 MHz, T = 8 timesteps.
//
// The paper's table rows group conv layers by (channels, spatial size).
// Reproduced properties (see EXPERIMENTS.md for calibration notes):
//   * conv-layer latency is nearly constant across groups — the
//     event-driven compute term scales with spikes x OC-tiles, which is
//     roughly invariant across the ResNet stages, and the per-layer PS
//     invocation overhead dominates;
//   * the FC row dwarfs every conv row (PS-mediated AXI4-lite word
//     transfers; calibrated to the paper's 58.9 ms).
// Full-width topologies with calibrated random weights: latency depends
// on spike activity and geometry, not task accuracy.
#include <map>

#include "bench/common.hpp"
#include "core/compiler.hpp"
#include "core/convert.hpp"
#include "sim/sia.hpp"
#include "snn/encoding.hpp"

namespace {

using namespace sia;

struct GroupRow {
    int layers = 0;
    double ms = 0.0;
};

void run_model(const snn::SnnModel& model, const char* name,
               const std::map<std::string, double>& paper_rows,
               const std::vector<std::pair<std::string, std::string>>& group_of) {
    const sim::SiaConfig cfg;
    const auto program = core::SiaCompiler(cfg).compile(model);
    sim::Sia sia(cfg, model, program);

    util::Rng rng(5);
    tensor::Tensor img(tensor::Shape{1, model.input_channels, model.input_h,
                                     model.input_w});
    for (std::int64_t i = 0; i < img.numel(); ++i) img.flat(i) = rng.uniform(0.0F, 1.0F);
    const auto res = sia.run(snn::encode_thermometer(img, 8));

    // Group per-layer latencies.
    std::map<std::string, GroupRow> groups;
    std::vector<std::string> order;
    for (std::size_t l = 0; l < res.layer_stats.size(); ++l) {
        const auto& stats = res.layer_stats[l];
        std::string group = "other";
        for (const auto& [prefix, g] : group_of) {
            if (stats.label.rfind(prefix, 0) == 0) {
                group = g;
                break;
            }
        }
        if (groups.find(group) == groups.end()) order.push_back(group);
        groups[group].layers += 1;
        groups[group].ms += cfg.cycles_to_ms(stats.total());
    }

    util::Table table(std::string(name) + " layer-group latency, T=8 @100 MHz");
    table.header({"group", "#layers", "measured (ms)", "per-layer/step (ms)",
                  "paper (ms)"});
    for (const auto& g : order) {
        const GroupRow& row = groups[g];
        const auto paper = paper_rows.find(g);
        table.row({g, util::cell(static_cast<long long>(row.layers)),
                   util::cell(row.ms, 2), util::cell(row.ms / row.layers / 8.0, 3),
                   paper != paper_rows.end() ? util::cell(paper->second, 2) : "-"});
    }
    table.print(std::cout);
    std::cout << "total inference latency: " << util::cell(res.total_ms(cfg), 2)
              << " ms\n\n";
}

}  // namespace

int main() {
    bench::print_header("Table I: layer-wise latency, ResNet-18 and VGG-11");

    {
        nn::ResNetConfig cfg;
        cfg.width = 64;
        const auto model = bench::calibrated_model<nn::ResNet18>(cfg);
        const auto snn = core::AnnToSnnConverter().convert(model->ir());
        run_model(snn, "ResNet-18",
                  {{"Conv (3x3,64) 32x32", 4.73},
                   {"Conv (3x3,128) 16x16", 3.58},
                   {"Conv (3x3,256) 8x8", 3.58},
                   {"Conv (3x3,512) 4x4", 3.57},
                   {"FC 512x10", 58.929}},
                  {{"stem", "Conv (3x3,64) 32x32"},
                   {"layer1", "Conv (3x3,64) 32x32"},
                   {"layer2", "Conv (3x3,128) 16x16"},
                   {"layer3", "Conv (3x3,256) 8x8"},
                   {"layer4", "Conv (3x3,512) 4x4"},
                   {"fc", "FC 512x10"}});
    }
    {
        nn::VggConfig cfg;
        cfg.width = 64;
        const auto model = bench::calibrated_model<nn::Vgg11>(cfg);
        const auto snn = core::AnnToSnnConverter().convert(model->ir());
        run_model(snn, "VGG-11",
                  {{"Conv (3x3,64) 32x32", 0.94},
                   {"Conv (3x3,128) 16x16", 0.89},
                   {"Conv (3x3,256) 8x8", 2.68},
                   {"Conv (3x3,512) 4x4/2x2", 2.67},
                   {"FC 512x10", 58.72}},
                  {{"conv1.", "Conv (3x3,64) 32x32"},
                   {"conv2.", "Conv (3x3,128) 16x16"},
                   {"conv3.", "Conv (3x3,256) 8x8"},
                   {"conv4.", "Conv (3x3,256) 8x8"},
                   {"conv5.", "Conv (3x3,512) 4x4/2x2"},
                   {"conv6.", "Conv (3x3,512) 4x4/2x2"},
                   {"conv7.", "Conv (3x3,512) 4x4/2x2"},
                   {"conv8.", "Conv (3x3,512) 4x4/2x2"},
                   {"fc", "FC 512x10"}});
    }
    std::cout << "note: the measured per-layer-PER-TIMESTEP column tracks the paper's\n"
                 "per-layer values closely and is flat across conv groups — strong\n"
                 "evidence Table I reports per-timestep latency. The FC row rides the\n"
                 "PS-mediated AXI-lite word path in both. See EXPERIMENTS.md.\n";
    return 0;
}
