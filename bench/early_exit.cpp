// Temporal early exit: accuracy vs mean timesteps (the anytime-inference
// reading of the paper's Fig. 7/9 accuracy-vs-T curves — most inputs are
// decided long before step T, so a per-item confidence criterion should
// buy back most of the tail).
//
// For each model family (VGG-11, ResNet-18 reduced-width) and input
// density, every test item runs the full T timesteps once with readout
// history on; a margin sweep is then evaluated *offline* over the
// recorded logits_per_step via snn::ExitEvaluator — exactly equivalent
// to the live decision by the evaluator's purity contract — producing
// the accuracy / mean-timesteps / prediction-flip curve per margin. A
// live spot-check reruns a slice of items through both engines with the
// calibrated criterion armed and verifies the engines' in-loop decision
// (exit step, reason, readout) against the offline replay.
//
// Calibration picks the smallest swept margin with zero prediction
// flips against the full-T run at the base density, doubling past the
// fixed grid when a family's zero-flip point lies beyond it. With
// --check the
// calibrated point must exist, keep zero flips, and spend at most
// 0.7x T mean timesteps — the regression tripwire for criterion-math
// drift (exits firing late) and for silent history/decision divergence.
//
// Emits machine-readable BENCH_EARLY_EXIT.json.
//
// Flags: --quick (reduced families/sweep/items), --check, --out <path>.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "snn/engine.hpp"
#include "snn/exit.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace sia;

constexpr std::int64_t kTimesteps = 30;
constexpr double kMeanStepsCeiling = 0.7;  // --check: mean steps <= 0.7*T

/// The swept criterion: margin rule with a short hysteresis window so a
/// single noisy step cannot fire the exit, floor 2 so the all-zero
/// step-0 readout is never even evaluated.
snn::ExitCriterion sweep_criterion(std::int64_t margin) {
    return {.margin = margin, .stable_checks = 0, .min_steps = 2, .hysteresis = 2,
            .check_interval = 1};
}

struct Item {
    std::vector<std::vector<std::int64_t>> history;  ///< full-T logits_per_step
    snn::SpikeTrain train;
    std::int64_t label = 0;
    std::int64_t full_prediction = -1;
    std::int64_t spikes = 0;
};

struct SweepPoint {
    std::string family;
    double density_scale = 1.0;
    double density = 0.0;  ///< input spikes / (pixels * T)
    std::int64_t margin = 0;
    double mean_steps = 0.0;
    double accuracy = 0.0;       ///< at the exit step
    double full_accuracy = 0.0;  ///< same items at full T
    std::int64_t flips = 0;      ///< exit prediction != full-T prediction
    std::int64_t exited = 0;     ///< items retired before T
    std::size_t items = 0;
};

struct Calibration {
    std::string family;
    bool found = false;
    std::int64_t margin = 0;
    double mean_steps = 0.0;
    double ratio = 1.0;
    std::int64_t flips = 0;
};

/// Offline replay of one item's criterion over its recorded history;
/// returns the exit step (T when the criterion never fires).
std::int64_t offline_exit_step(const Item& item, const snn::ExitCriterion& crit,
                               snn::ExitReason* reason_out = nullptr) {
    snn::ExitEvaluator eval(crit, {});
    for (std::size_t t = 0; t < item.history.size(); ++t) {
        const auto reason =
            eval.observe(item.history[t], static_cast<std::int64_t>(t) + 1);
        if (reason != snn::ExitReason::kNone) {
            if (reason_out != nullptr) *reason_out = reason;
            return static_cast<std::int64_t>(t) + 1;
        }
    }
    if (reason_out != nullptr) *reason_out = snn::ExitReason::kNone;
    return static_cast<std::int64_t>(item.history.size());
}

SweepPoint sweep(const std::vector<Item>& items, const std::string& family,
                 double density_scale, double density, std::int64_t margin) {
    SweepPoint point;
    point.family = family;
    point.density_scale = density_scale;
    point.density = density;
    point.margin = margin;
    point.items = items.size();
    const snn::ExitCriterion crit = sweep_criterion(margin);
    std::int64_t steps_sum = 0;
    std::int64_t correct = 0;
    std::int64_t full_correct = 0;
    for (const Item& item : items) {
        const std::int64_t exit_step = offline_exit_step(item, crit);
        steps_sum += exit_step;
        const std::int64_t predicted = snn::argmax_first(
            item.history[static_cast<std::size_t>(exit_step) - 1]);
        if (predicted == item.label) ++correct;
        if (item.full_prediction == item.label) ++full_correct;
        if (predicted != item.full_prediction) ++point.flips;
        if (exit_step < static_cast<std::int64_t>(item.history.size())) ++point.exited;
    }
    const auto n = static_cast<double>(items.size());
    point.mean_steps = static_cast<double>(steps_sum) / n;
    point.accuracy = static_cast<double>(correct) / n;
    point.full_accuracy = static_cast<double>(full_correct) / n;
    return point;
}

void write_json(const std::string& path, const std::vector<SweepPoint>& points,
                const std::vector<Calibration>& calibrations,
                std::size_t live_items, std::size_t live_mismatches, bool quick) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::cerr << "early_exit: cannot open " << path << "\n";
        std::exit(EXIT_FAILURE);
    }
    out << "{\n  \"bench\": \"early_exit\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"timesteps\": " << kTimesteps << ",\n"
        << "  \"mean_steps_ceiling\": " << kMeanStepsCeiling << ",\n"
        << "  \"criterion\": {\"min_steps\": 2, \"hysteresis\": 2, "
           "\"check_interval\": 1},\n"
        << "  \"live_check\": {\"items\": " << live_items
        << ", \"mismatches\": " << live_mismatches << "},\n"
        << "  \"calibration\": [\n";
    for (std::size_t i = 0; i < calibrations.size(); ++i) {
        const Calibration& c = calibrations[i];
        out << "    {\"family\": \"" << c.family << "\", \"found\": "
            << (c.found ? "true" : "false") << ", \"margin\": " << c.margin
            << ", \"mean_steps\": " << c.mean_steps << ", \"ratio\": " << c.ratio
            << ", \"flips\": " << c.flips << "}"
            << (i + 1 < calibrations.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"sweep\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint& p = points[i];
        out << "    {\"family\": \"" << p.family << "\", \"density_scale\": "
            << p.density_scale << ", \"density\": " << p.density
            << ", \"margin\": " << p.margin << ", \"mean_steps\": " << p.mean_steps
            << ", \"accuracy\": " << p.accuracy << ", \"full_accuracy\": "
            << p.full_accuracy << ", \"flips\": " << p.flips << ", \"exited\": "
            << p.exited << ", \"items\": " << p.items << "}"
            << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool check = false;
    std::string out_path = "BENCH_EARLY_EXIT.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: early_exit [--quick] [--check] [--out <path>]\n";
            return EXIT_FAILURE;
        }
    }

    bench::print_header(
        "Temporal early exit: accuracy vs mean timesteps (margin sweep)");
    util::WallTimer timer;

    // Reduced training in quick mode: the gates compare exit predictions
    // against the same model's own full-T run, so absolute accuracy does
    // not matter, only that the readout trajectories are model-shaped.
    core::PipelineConfig cfg = bench::bench_pipeline_config();
    if (quick) {
        cfg.train.epochs = 2;
        cfg.finetune_epochs = 1;
    }

    const std::vector<std::int64_t> margins =
        quick ? std::vector<std::int64_t>{2, 8, 32, 128, 512, 2048}
              : std::vector<std::int64_t>{1,  2,   4,   8,   16,   32,
                                          64, 128, 256, 512, 1024, 2048};
    // Input-density axis: the thermometer encoder fires proportionally
    // to pixel intensity, so scaling the image sweeps the input spike
    // density the same way the paper's coding ablation does.
    const std::vector<double> density_scales =
        quick ? std::vector<double>{1.0} : std::vector<double>{1.0, 0.6};

    const std::vector<std::pair<std::string, bool>> families =
        quick ? std::vector<std::pair<std::string, bool>>{{"vgg11", false}}
              : std::vector<std::pair<std::string, bool>>{{"vgg11", false},
                                                          {"resnet18", true}};

    util::Table table("early_exit" + std::string(quick ? " (quick)" : "") +
                      ", T=" + std::to_string(kTimesteps) +
                      ", criterion: margin sweep, min_steps=2, hysteresis=2");
    table.header({"family", "scale", "margin", "mean T", "acc %", "full %",
                  "flips", "exited"});

    std::vector<SweepPoint> points;
    std::vector<Calibration> calibrations;
    std::size_t live_items = 0;
    std::size_t live_mismatches = 0;
    bool check_failed = false;

    for (const auto& [family, resnet] : families) {
        const auto trained = bench::train_model(resnet, /*width=*/8, cfg);
        const auto encoder = trained.encoder();
        snn::FunctionalEngine engine(trained.result.snn);

        const std::int64_t total = trained.data.test.size();
        const std::int64_t count = quick ? std::min<std::int64_t>(total, 60) : total;

        for (const double scale : density_scales) {
            // Full-T reference pass with readout history on.
            std::vector<Item> items;
            items.reserve(static_cast<std::size_t>(count));
            double spikes = 0.0;
            double sites = 0.0;
            for (std::int64_t i = 0; i < count; ++i) {
                Item item;
                tensor::Tensor img = trained.data.test.sample(i);
                for (std::int64_t j = 0; j < img.numel(); ++j) {
                    img.flat(j) *= static_cast<float>(scale);
                }
                item.train = encoder(img, kTimesteps);
                item.label = trained.data.test.labels[static_cast<std::size_t>(i)];
                const auto full = engine.run(item.train);
                item.history = full.logits_per_step;
                item.full_prediction = full.predicted();
                for (const auto& frame : item.train) {
                    item.spikes += frame.count();
                    sites += static_cast<double>(frame.size());
                }
                spikes += static_cast<double>(item.spikes);
                items.push_back(std::move(item));
            }
            const double density = sites > 0.0 ? spikes / sites : 0.0;

            for (const std::int64_t margin : margins) {
                const SweepPoint point =
                    sweep(items, family, scale, density, margin);
                table.row({family, util::cell(scale, 1), util::cell(margin),
                           util::cell(point.mean_steps, 2),
                           util::cell_pct(100.0 * point.accuracy),
                           util::cell_pct(100.0 * point.full_accuracy),
                           util::cell(point.flips),
                           util::cell(point.exited)});
                points.push_back(point);
            }

            if (scale != 1.0) continue;

            // Calibration at the base density: smallest margin with zero
            // prediction flips against the full-T run.
            Calibration calib;
            calib.family = family;
            for (const SweepPoint& p : points) {
                if (p.family != family || p.density_scale != 1.0) continue;
                if (p.flips == 0) {
                    calib.found = true;
                    calib.margin = p.margin;
                    calib.mean_steps = p.mean_steps;
                    calib.ratio = p.mean_steps / static_cast<double>(kTimesteps);
                    calib.flips = p.flips;
                    break;
                }
            }
            // The fixed grid can stop short of a family's zero-flip
            // point; keep doubling past it (offline replay only, so the
            // extension costs nothing next to the full-T reference
            // pass). Terminates: a margin no accumulated lead can meet
            // retires nothing, which trivially agrees with the full run.
            for (std::int64_t margin = 2 * margins.back(); !calib.found;
                 margin *= 2) {
                const SweepPoint point =
                    sweep(items, family, scale, density, margin);
                table.row({family, util::cell(scale, 1), util::cell(margin),
                           util::cell(point.mean_steps, 2),
                           util::cell_pct(100.0 * point.accuracy),
                           util::cell_pct(100.0 * point.full_accuracy),
                           util::cell(point.flips),
                           util::cell(point.exited)});
                points.push_back(point);
                if (point.flips == 0) {
                    calib.found = true;
                    calib.margin = point.margin;
                    calib.mean_steps = point.mean_steps;
                    calib.ratio =
                        point.mean_steps / static_cast<double>(kTimesteps);
                    calib.flips = point.flips;
                }
            }
            calibrations.push_back(calib);
            if (check) {
                if (!calib.found) {
                    check_failed = true;
                    std::cerr << "CHECK FAILED: " << family
                              << ": no swept margin reaches zero flips\n";
                } else if (calib.ratio > kMeanStepsCeiling) {
                    check_failed = true;
                    std::cerr << "CHECK FAILED: " << family << ": margin "
                              << calib.margin << " spends " << calib.mean_steps
                              << " mean steps (" << calib.ratio << "x T, ceiling "
                              << kMeanStepsCeiling << "x)\n";
                }
            }

            // Live spot-check: the engine's in-loop decision must match
            // the offline replay exactly (evaluator purity contract).
            if (calib.found) {
                const snn::ExitCriterion crit = sweep_criterion(calib.margin);
                const std::size_t spot = std::min<std::size_t>(items.size(), 16);
                for (std::size_t i = 0; i < spot; ++i) {
                    ++live_items;
                    snn::ExitReason want_reason = snn::ExitReason::kNone;
                    const std::int64_t want_step =
                        offline_exit_step(items[i], crit, &want_reason);
                    const auto live = engine.run(items[i].train, crit);
                    const auto& want_readout =
                        items[i].history[static_cast<std::size_t>(want_step) - 1];
                    if (live.timesteps != want_step ||
                        live.exit_reason != want_reason ||
                        live.readout != want_readout) {
                        ++live_mismatches;
                        std::cerr << "LIVE MISMATCH: " << family << " item " << i
                                  << ": live step " << live.timesteps
                                  << " vs offline " << want_step << "\n";
                    }
                }
            }
        }
        table.separator();
    }

    table.print(std::cout);
    for (const Calibration& c : calibrations) {
        if (c.found) {
            std::cout << c.family << ": margin " << c.margin << " -> "
                      << util::cell(c.mean_steps, 2) << " mean steps ("
                      << util::cell(c.ratio, 3) << "x T) at zero flips\n";
        } else {
            std::cout << c.family << ": no zero-flip margin in the sweep\n";
        }
    }

    write_json(out_path, points, calibrations, live_items, live_mismatches, quick);
    std::cout << "wrote " << out_path << " (" << util::cell(timer.seconds(), 1)
              << " s)\n";

    if (live_mismatches > 0) {
        std::cerr << "FATAL: live early-exit decisions diverged from the offline "
                     "replay\n";
        return EXIT_FAILURE;
    }
    if (check_failed) {
        std::cerr << "FATAL: early-exit bench failed its gates\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
}
