// core::Server offered-load sweep: submit pre-encoded requests at a
// controlled arrival rate against each backend (functional engine and
// cycle-accurate sim::Sia) and report achieved throughput plus p50/p95/
// p99 latency from the server's streaming histogram, with client-side
// per-submitter histograms merged as a cross-check.
//
// The sweep is self-calibrating: a warm-up batch estimates the
// backend's capacity, then offered load runs at fractions of it (below
// saturation the admission window dominates latency; above it the
// queue does). Emits machine-readable BENCH_SERVING.json. With --check,
// exits nonzero if the serving loop misbehaves (lost/rejected requests
// under the block policy, unordered percentiles, zero throughput) —
// the CI smoke gate.
//
// Flags: --quick (reduced sweep), --check, --out <path>, --threads <n>.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <utility>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/backend.hpp"
#include "core/batch_runner.hpp"
#include "core/convert.hpp"
#include "core/server.hpp"
#include "nn/vgg.hpp"
#include "snn/encoding.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace sia;
using Clock = std::chrono::steady_clock;

// Server admission parameters of the sweep (also recorded in the JSON).
constexpr std::size_t kMaxBatch = 16;
constexpr std::int64_t kMaxWaitUs = 500;

std::vector<snn::SpikeTrain> make_pool(const snn::SnnModel& model, std::size_t count,
                                       std::int64_t timesteps) {
    util::Rng rng(123);
    std::vector<snn::SpikeTrain> pool;
    pool.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        tensor::Tensor img(tensor::Shape{1, model.input_channels, model.input_h,
                                         model.input_w});
        for (std::int64_t j = 0; j < img.numel(); ++j) img.flat(j) = rng.uniform();
        pool.push_back(snn::encode_thermometer(img, timesteps));
    }
    return pool;
}

struct LoadPoint {
    std::string backend;
    double offered_rps = 0.0;
    double achieved_rps = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double client_p99_us = 0.0;  ///< merged per-submitter histograms
    double mean_batch = 0.0;
    std::size_t completed = 0;
    std::size_t rejected = 0;
};

/// Estimate the backend's capacity (requests/sec) with a warm saturated
/// batch through the runner — also warms per-worker engines so the
/// measured load points exclude construction cost.
double calibrate_capacity(const std::shared_ptr<core::Backend>& backend,
                          const std::vector<snn::SpikeTrain>& pool,
                          std::size_t threads, std::size_t requests) {
    core::BatchRunner runner(backend, {.threads = threads});
    std::vector<core::Request> batch;
    for (std::size_t i = 0; i < requests; ++i) {
        batch.push_back(core::Request::view_train(pool[i % pool.size()]));
    }
    (void)runner.run(batch);  // cold: builds engines/programs
    const util::WallTimer timer;
    (void)runner.run(batch);  // warm: the measured capacity
    return 1e3 * static_cast<double>(requests) / timer.millis();
}

/// Open-loop run: `submitters` threads submit `total` requests with
/// uniform inter-arrival spacing summing to `offered_rps`.
LoadPoint run_load(const std::shared_ptr<core::Backend>& backend,
                   const std::string& backend_name,
                   const std::vector<snn::SpikeTrain>& pool, std::size_t threads,
                   double offered_rps, std::size_t total, std::size_t submitters) {
    core::Server server(backend, {.threads = threads,
                                  .max_queue = 4096,
                                  .max_batch = kMaxBatch,
                                  .max_wait_us = kMaxWaitUs,
                                  .backpressure = core::BackpressurePolicy::kBlock});

    const double per_submitter_rps = offered_rps / static_cast<double>(submitters);
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / per_submitter_rps));
    const std::size_t per_submitter = total / submitters;

    std::vector<util::StreamingHistogram> client_latency(submitters);
    std::vector<std::thread> threads_vec;
    const util::WallTimer wall;
    for (std::size_t s = 0; s < submitters; ++s) {
        threads_vec.emplace_back([&, s] {
            auto next = Clock::now();
            std::vector<std::pair<Clock::time_point, std::future<core::Response>>>
                futures;
            futures.reserve(per_submitter);
            for (std::size_t i = 0; i < per_submitter; ++i) {
                std::this_thread::sleep_until(next);
                next += interval;
                const auto t0 = Clock::now();
                futures.emplace_back(
                    t0, server.submit(core::Request::view_train(
                            pool[(s * per_submitter + i) % pool.size()])));
            }
            for (auto& [t0, f] : futures) {
                (void)f.get();
                client_latency[s].add(
                    std::chrono::duration<double, std::micro>(Clock::now() - t0)
                        .count());
            }
        });
    }
    for (auto& t : threads_vec) t.join();
    const double wall_ms = wall.millis();
    server.shutdown();

    util::StreamingHistogram merged;
    for (const auto& h : client_latency) merged.merge(h);

    const auto stats = server.stats();
    LoadPoint point;
    point.backend = backend_name;
    point.offered_rps = offered_rps;
    point.achieved_rps = 1e3 * static_cast<double>(stats.completed) / wall_ms;
    point.p50_us = stats.latency_us.p50();
    point.p95_us = stats.latency_us.p95();
    point.p99_us = stats.latency_us.p99();
    point.client_p99_us = merged.p99();
    point.mean_batch = stats.mean_batch_size();
    point.completed = stats.completed;
    point.rejected = stats.rejected;
    return point;
}

void write_json(const std::string& path, const std::vector<LoadPoint>& rows,
                bool quick, std::size_t threads) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::cerr << "serving_latency: cannot open " << path << "\n";
        std::exit(EXIT_FAILURE);
    }
    out << "{\n  \"bench\": \"serving_latency\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"max_batch\": " << kMaxBatch << ",\n  \"max_wait_us\": " << kMaxWaitUs
        << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const LoadPoint& r = rows[i];
        out << "    {\"backend\": \"" << r.backend
            << "\", \"offered_rps\": " << r.offered_rps
            << ", \"achieved_rps\": " << r.achieved_rps
            << ", \"p50_us\": " << r.p50_us << ", \"p95_us\": " << r.p95_us
            << ", \"p99_us\": " << r.p99_us
            << ", \"client_p99_us\": " << r.client_p99_us
            << ", \"mean_batch\": " << r.mean_batch
            << ", \"completed\": " << r.completed
            << ", \"rejected\": " << r.rejected << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool check = false;
    std::string out_path = "BENCH_SERVING.json";
    std::size_t threads = 4;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else {
            std::cerr << "usage: serving_latency [--quick] [--check] [--out <path>] "
                         "[--threads <n>]\n";
            return EXIT_FAILURE;
        }
    }

    bench::print_header("Serving latency under offered load (core::Server)");

    nn::VggConfig cfg;
    cfg.width = 8;
    cfg.input_size = 16;
    const auto ann = bench::calibrated_model<nn::Vgg11>(cfg);
    const auto model = core::AnnToSnnConverter(core::ConvertOptions{}).convert(ann->ir());
    const std::int64_t timesteps = 6;
    const auto pool = make_pool(model, 32, timesteps);

    const std::vector<double> load_fractions =
        quick ? std::vector<double>{0.5, 2.0} : std::vector<double>{0.25, 0.5, 1.0, 2.0};
    const std::size_t submitters = 2;

    std::vector<LoadPoint> rows;
    util::Table table("serving_latency" + std::string(quick ? " (quick)" : "") +
                      ", VGG-11 w=8, T=6, threads=" + std::to_string(threads));
    table.header({"backend", "offered r/s", "achieved r/s", "p50 ms", "p95 ms",
                  "p99 ms", "mean batch"});

    bool check_failed = false;
    const auto sweep = [&](const std::string& name,
                           const std::function<std::shared_ptr<core::Backend>()>&
                               make_backend) {
        const double capacity = calibrate_capacity(
            make_backend(), pool, threads, quick ? 16 : 64);
        // Round to a submitter multiple: run_load splits total evenly, so
        // a remainder would be requests the --check gate counts as lost.
        const std::size_t raw_total =
            quick ? 2 * submitters * 8
                  : std::max<std::size_t>(64, static_cast<std::size_t>(capacity / 4));
        const std::size_t total =
            std::max<std::size_t>(1, raw_total / submitters) * submitters;
        for (const double fraction : load_fractions) {
            const double offered = std::max(1.0, capacity * fraction);
            // A fresh backend per point keeps per-point warm-up visible in
            // none of the latency numbers (the calibration already warmed
            // per-worker state on the shared instance; here we re-warm).
            auto backend = make_backend();
            (void)calibrate_capacity(backend, pool, threads, quick ? 4 : 8);
            const LoadPoint point = run_load(backend, name, pool, threads, offered,
                                             total, submitters);
            rows.push_back(point);
            table.row({name, util::cell(point.offered_rps, 1),
                       util::cell(point.achieved_rps, 1),
                       util::cell(point.p50_us / 1e3, 2),
                       util::cell(point.p95_us / 1e3, 2),
                       util::cell(point.p99_us / 1e3, 2),
                       util::cell(point.mean_batch, 2)});
            if (check) {
                const bool lost = point.completed != total || point.rejected != 0;
                const bool disordered =
                    !(point.p50_us > 0.0) || point.p50_us > point.p95_us + 1e-9 ||
                    point.p95_us > point.p99_us + 1e-9;
                const bool stalled = !(point.achieved_rps > 0.0);
                if (lost || disordered || stalled) {
                    check_failed = true;
                    std::cerr << "CHECK FAILED: backend=" << name << " offered="
                              << offered << " completed=" << point.completed << "/"
                              << total << " rejected=" << point.rejected
                              << " p50/p95/p99=" << point.p50_us << "/"
                              << point.p95_us << "/" << point.p99_us << "\n";
                }
            }
        }
    };

    sweep("functional",
          [&] { return std::make_shared<core::FunctionalBackend>(model); });
    table.separator();
    sweep("sia", [&] { return std::make_shared<core::SiaBackend>(model); });

    table.print(std::cout);
    write_json(out_path, rows, quick, threads);
    std::cout << "wrote " << out_path << "\n";

    if (check_failed) {
        std::cerr << "FATAL: serving loop lost requests or produced degenerate "
                     "latency stats\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
}
