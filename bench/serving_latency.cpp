// core::Server offered-load sweep: submit pre-encoded requests at a
// controlled arrival rate against each backend (functional engine and
// cycle-accurate sim::Sia) and report achieved throughput plus p50/p95/
// p99 latency from the server's streaming histogram, with client-side
// per-submitter histograms merged as a cross-check.
//
// The sweep is self-calibrating: a warm-up batch estimates the
// backend's capacity, then offered load runs at fractions of it. With
// continuous batching there is no admission window: below saturation a
// request's latency is its own service time (the 0.25x load point is
// gated against 2x the measured single-request p99 — the regression
// tripwire for reintroducing a batching wait), above saturation the
// queue dominates.
//
// A mixed-tenant overload scenario then drives two registered models
// with three tenants (premium/kHigh, standard/kNormal, batch/kLow) at
// 2x aggregate capacity under kReject, and reports per-tenant latency,
// shedding, and SLO burn. With --check it gates: premium p99 within 3x
// of its unloaded p99, aggregate throughput within 10% of the
// single-tenant 2x point, ordered percentiles.
//
// With --chaos, the same overload shape runs twice more under kBlock —
// fault-free, then with a seeded 1% throw + 1% transient FaultPlan on
// both lanes — and --check gates the exact fault ledger (zero
// non-faulted requests lost, every seeded fault resolved as a
// structured error or retried success) plus premium p99 within 2x of
// the fault-free twin.
//
// An early-exit section then serves the same pool with a per-request
// margin criterion on each lane and records per-lane mean/p50/p99
// `steps_used` (and the retired fraction) — the serving-side view of
// temporal early exit. With --check it gates the ledger: every request
// completes, steps_used within [min_steps, T], ordered percentiles.
//
// Serving lanes run with readout history off (EngineConfig::
// record_readout_history = false): responses carry the final logits and
// steps_used either way, and per-step history is dead weight at serving
// time.
//
// Emits machine-readable BENCH_SERVING.json.
//
// Flags: --quick (reduced sweep), --check, --chaos, --out <path>,
// --threads <n>.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "core/backend.hpp"
#include "core/batch_runner.hpp"
#include "core/convert.hpp"
#include "core/faulty_backend.hpp"
#include "core/server.hpp"
#include "nn/vgg.hpp"
#include "snn/encoding.hpp"
#include "snn/engine.hpp"
#include "snn/exit.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace sia;
using Clock = std::chrono::steady_clock;

// Wave bound of the single-model sweep (also recorded in the JSON).
constexpr std::size_t kMaxBatch = 16;

/// Serving lanes don't read per-step readout history — only the final
/// logits and the exit decision — so the functional lanes drop it.
snn::EngineConfig lean_engine_config() {
    snn::EngineConfig config;
    config.record_readout_history = false;
    return config;
}

std::vector<snn::SpikeTrain> make_pool(const snn::SnnModel& model, std::size_t count,
                                       std::int64_t timesteps) {
    util::Rng rng(123);
    std::vector<snn::SpikeTrain> pool;
    pool.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        tensor::Tensor img(tensor::Shape{1, model.input_channels, model.input_h,
                                         model.input_w});
        for (std::int64_t j = 0; j < img.numel(); ++j) img.flat(j) = rng.uniform();
        pool.push_back(snn::encode_thermometer(img, timesteps));
    }
    return pool;
}

struct LoadPoint {
    std::string backend;
    double fraction = 0.0;  ///< offered load as a fraction of capacity
    double offered_rps = 0.0;
    double achieved_rps = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double client_p99_us = 0.0;  ///< merged per-submitter histograms
    double mean_batch = 0.0;
    std::size_t completed = 0;
    std::size_t rejected = 0;
};

/// Estimate the backend's capacity (requests/sec) with a warm saturated
/// batch through the runner — also warms per-worker engines so the
/// measured load points exclude construction cost.
double calibrate_capacity(const std::shared_ptr<core::Backend>& backend,
                          const std::vector<snn::SpikeTrain>& pool,
                          std::size_t threads, std::size_t requests) {
    core::BatchRunner runner(backend, {.threads = threads});
    std::vector<core::Request> batch;
    for (std::size_t i = 0; i < requests; ++i) {
        batch.push_back(core::Request::view_train(pool[i % pool.size()]));
    }
    (void)runner.run(batch);  // cold: builds engines/programs
    const util::WallTimer timer;
    (void)runner.run(batch);  // warm: the measured capacity
    return 1e3 * static_cast<double>(requests) / timer.millis();
}

/// Closed-loop single-request latency: sequential awaited submits on an
/// otherwise idle server, so every request rides a wave of one. This is
/// the latency floor the low-load sweep points are gated against.
util::StreamingHistogram measure_single_request(
    const std::shared_ptr<core::Backend>& backend,
    const std::vector<snn::SpikeTrain>& pool, std::size_t threads,
    std::size_t requests) {
    core::Server server(backend, {.threads = threads, .max_batch = kMaxBatch});
    util::StreamingHistogram latency;
    for (std::size_t i = 0; i < requests; ++i) {
        const auto t0 = Clock::now();
        (void)server.submit(core::Request::view_train(pool[i % pool.size()])).get();
        latency.add(
            std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
    }
    server.shutdown();
    return latency;
}

/// Open-loop run: `submitters` threads submit `total` requests with
/// uniform inter-arrival spacing summing to `offered_rps`.
LoadPoint run_load(const std::shared_ptr<core::Backend>& backend,
                   const std::string& backend_name,
                   const std::vector<snn::SpikeTrain>& pool, std::size_t threads,
                   double offered_rps, std::size_t total, std::size_t submitters) {
    core::Server server(backend, {.threads = threads,
                                  .max_queue = 4096,
                                  .max_batch = kMaxBatch,
                                  .backpressure = core::BackpressurePolicy::kBlock});

    const double per_submitter_rps = offered_rps / static_cast<double>(submitters);
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / per_submitter_rps));
    const std::size_t per_submitter = total / submitters;

    std::vector<util::StreamingHistogram> client_latency(submitters);
    std::vector<std::thread> threads_vec;
    const util::WallTimer wall;
    for (std::size_t s = 0; s < submitters; ++s) {
        threads_vec.emplace_back([&, s] {
            auto next = Clock::now();
            std::vector<std::pair<Clock::time_point, std::future<core::Response>>>
                futures;
            futures.reserve(per_submitter);
            for (std::size_t i = 0; i < per_submitter; ++i) {
                std::this_thread::sleep_until(next);
                next += interval;
                const auto t0 = Clock::now();
                futures.emplace_back(
                    t0, server.submit(core::Request::view_train(
                            pool[(s * per_submitter + i) % pool.size()])));
            }
            for (auto& [t0, f] : futures) {
                (void)f.get();
                client_latency[s].add(
                    std::chrono::duration<double, std::micro>(Clock::now() - t0)
                        .count());
            }
        });
    }
    for (auto& t : threads_vec) t.join();
    const double wall_ms = wall.millis();
    server.shutdown();

    util::StreamingHistogram merged;
    for (const auto& h : client_latency) merged.merge(h);

    const auto stats = server.stats();
    LoadPoint point;
    point.backend = backend_name;
    point.offered_rps = offered_rps;
    point.achieved_rps = 1e3 * static_cast<double>(stats.completed) / wall_ms;
    point.p50_us = stats.latency_us.p50();
    point.p95_us = stats.latency_us.p95();
    point.p99_us = stats.latency_us.p99();
    point.client_p99_us = merged.p99();
    point.mean_batch = stats.mean_batch_size();
    point.completed = stats.completed;
    point.rejected = stats.rejected;
    return point;
}

// ---- early-exit steps_used accounting ----

struct ExitLanePoint {
    std::string backend;
    std::int64_t margin = 0;
    std::int64_t timesteps = 0;
    std::size_t completed = 0;
    std::size_t exited = 0;  ///< retired before the offered T
    double mean_steps = 0.0;
    double p50_steps = 0.0;
    double p99_steps = 0.0;
};

/// Serve `total` pool requests with a margin criterion armed and record
/// the per-lane steps_used distribution the responses report.
ExitLanePoint measure_early_exit(const std::string& name,
                                 const std::shared_ptr<core::Backend>& backend,
                                 const std::vector<snn::SpikeTrain>& pool,
                                 std::size_t threads, std::int64_t timesteps,
                                 std::int64_t margin, std::size_t total) {
    const snn::ExitCriterion crit{
        .margin = margin, .stable_checks = 0, .min_steps = 2, .hysteresis = 1,
        .check_interval = 1};
    core::Server server(backend, {.threads = threads, .max_batch = kMaxBatch});
    std::vector<std::future<core::Response>> futures;
    futures.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        futures.push_back(server.submit(
            core::Request::view_train(pool[i % pool.size()]).with_early_exit(crit)));
    }
    ExitLanePoint point;
    point.backend = name;
    point.margin = margin;
    point.timesteps = timesteps;
    util::StreamingHistogram steps;
    for (auto& f : futures) {
        const auto response = f.get();
        if (!response.ok()) continue;
        ++point.completed;
        steps.add(static_cast<double>(response.steps_used));
        if (response.steps_used < response.steps_offered) ++point.exited;
    }
    server.shutdown();
    point.mean_steps = steps.mean();
    point.p50_steps = steps.p50();
    point.p99_steps = steps.p99();
    return point;
}

// ---- mixed-tenant overload scenario ----

struct TenantSpec {
    std::string name;
    core::Priority priority;
    std::uint32_t weight;
    double share;  ///< fraction of the aggregate offered load
};

struct TenantPoint {
    std::string name;
    std::size_t attempted = 0;
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t shed = 0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double slo_burn = 0.0;
};

struct MixedResult {
    double offered_rps = 0.0;
    double aggregate_rps = 0.0;
    double unloaded_premium_p99_us = 0.0;
    std::size_t max_batch = 0;
    /// Core-oversubscription factor of the storm: two lanes of
    /// max_batch workers each against the hardware. 1.0 on any box
    /// with enough cores; >1 means even a perfectly scheduled request
    /// inherits the other lane's CPU share in its wall time.
    double oversub = 1.0;
    std::vector<TenantPoint> tenants;
};

constexpr std::array<TenantSpec, 3> kTenants = {{
    {"premium", core::Priority::kHigh, 4, 0.10},
    {"standard", core::Priority::kNormal, 2, 0.45},
    {"batch", core::Priority::kLow, 1, 0.45},
}};

/// Two registered models ("vgg-a"/"vgg-b", same weights) driven at 2x
/// aggregate capacity by three tenants under kReject. Every tenant
/// spreads its traffic over both models round-robin, so each lane sees
/// the full priority mix. The storm wave bound is the effective worker
/// count: the in-flight wave is the latency floor for a just-admitted
/// high-priority request, and a wave of <= workers requests costs about
/// one request-time of wall clock.
MixedResult run_mixed(const snn::SnnModel& model,
                      const std::vector<snn::SpikeTrain>& pool, std::size_t threads,
                      double capacity, std::size_t total) {
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const std::size_t eff = threads == 0 ? hw : std::min(threads, hw);
    MixedResult result;
    // Wave cap = 2x the lane's workers: a just-admitted premium
    // request waits at most the in-flight wave (<= 2 service times on
    // a full pipeline) plus its own — inside the 3x budget the premium
    // gate checks — while non-high waves still amortize dispatch.
    const std::size_t workers = std::max<std::size_t>(1, eff);
    result.max_batch = 2 * workers;
    result.offered_rps = 2.0 * capacity;
    result.oversub = std::max(
        1.0, 2.0 * static_cast<double>(workers) / static_cast<double>(hw));

    auto backend_a = std::make_shared<core::FunctionalBackend>(model, lean_engine_config());
    auto backend_b = std::make_shared<core::FunctionalBackend>(model, lean_engine_config());
    (void)calibrate_capacity(backend_a, pool, threads, 8);
    (void)calibrate_capacity(backend_b, pool, threads, 8);

    // Cap each lane's workers at the hardware: two lanes of
    // `threads` workers each would oversubscribe a small box and the
    // resulting thrash would be charged to the scheduler under test.
    const core::ServerOptions storm_options{
        .threads = workers,
        .max_queue = 64,
        .max_batch = result.max_batch,
        .backpressure = core::BackpressurePolicy::kReject,
        .slo_us = 10'000.0,
        .tenant_weights = {{"premium", 4}, {"standard", 2}, {"batch", 1}},
    };

    // Phase 1 — unloaded premium baseline: the same server shape, only
    // premium traffic, sequential awaited submits (client-side clock,
    // which upper-bounds the server's admission-to-completion clock).
    {
        core::ServerOptions unloaded = storm_options;
        unloaded.backpressure = core::BackpressurePolicy::kBlock;
        core::Server server(unloaded);
        server.register_model("vgg-a", backend_a);
        server.register_model("vgg-b", backend_b);
        util::StreamingHistogram latency;
        for (std::size_t i = 0; i < 32; ++i) {
            const auto t0 = Clock::now();
            (void)server
                .submit(core::Request::view_train(pool[i % pool.size()])
                            .with(i % 2 == 0 ? "vgg-a" : "vgg-b", "premium",
                                  core::Priority::kHigh))
                .get();
            latency.add(
                std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
        }
        server.shutdown();
        result.unloaded_premium_p99_us = latency.p99();
    }

    // Phase 2 — the storm. One open-loop submitter per tenant at its
    // share of 2x capacity; kReject sheds the low lane first when a
    // queue fills.
    core::Server server(storm_options);
    server.register_model("vgg-a", backend_a);
    server.register_model("vgg-b", backend_b);

    std::array<TenantPoint, kTenants.size()> points;
    std::vector<std::thread> submitters;
    const util::WallTimer wall;
    for (std::size_t t = 0; t < kTenants.size(); ++t) {
        submitters.emplace_back([&, t] {
            const TenantSpec& spec = kTenants[t];
            TenantPoint& point = points[t];
            point.name = spec.name;
            const auto count = static_cast<std::size_t>(
                spec.share * static_cast<double>(total) + 0.5);
            const auto interval = std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(
                    1.0 / (spec.share * result.offered_rps)));
            std::vector<std::future<core::Response>> futures;
            futures.reserve(count);
            auto next = Clock::now();
            for (std::size_t i = 0; i < count; ++i) {
                std::this_thread::sleep_until(next);
                next += interval;
                ++point.attempted;
                auto future = server.try_submit(
                    core::Request::view_train(pool[(t * 977 + i) % pool.size()])
                        .with(i % 2 == 0 ? "vgg-a" : "vgg-b", spec.name,
                              spec.priority));
                if (future) {
                    futures.push_back(std::move(*future));
                }
            }
            for (auto& f : futures) {
                try {
                    (void)f.get();
                } catch (const std::runtime_error&) {
                    // Shed (displaced by a higher-priority request);
                    // counted from the server's ledger below.
                }
            }
        });
    }
    for (auto& t : submitters) t.join();
    const double wall_ms = wall.millis();
    server.shutdown();

    const auto stats = server.stats();
    result.aggregate_rps = 1e3 * static_cast<double>(stats.completed) / wall_ms;
    for (auto& point : points) {
        const auto it = stats.tenants.find(point.name);
        if (it != stats.tenants.end()) {
            point.submitted = it->second.submitted;
            point.completed = it->second.completed;
            point.rejected = it->second.rejected;
            point.shed = it->second.shed;
            point.p50_us = it->second.latency_us.p50();
            point.p99_us = it->second.latency_us.p99();
            point.slo_burn = it->second.slo.burn_rate();
        }
        result.tenants.push_back(point);
    }
    return result;
}

// ---- chaos storm (fault-injected overload) ----

struct ChaosResult {
    bool run = false;
    double offered_rps = 0.0;
    double aggregate_rps = 0.0;
    double fault_free_premium_p99_us = 0.0;
    double premium_p99_us = 0.0;
    std::size_t total = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t retried = 0;
    std::size_t failed_over = 0;
    std::size_t isolated_waves = 0;
    std::size_t expected_failed = 0;
    std::size_t expected_retried = 0;
};

/// The mixed-tenant storm shape under kBlock, run twice: a fault-free
/// twin, then the same storm with a seeded 1% throw + 1% transient
/// FaultPlan on both lanes. kBlock means nothing is rejected or shed,
/// so the ledger is exact: faulted streams are the injector's pure
/// per-stream decisions over each lane's admission range, every one of
/// them must resolve as a structured failure (throws) or a retried
/// success (transients), and every other request must complete — zero
/// non-faulted requests lost. --check also gates the premium p99 under
/// the fault storm against 2x its fault-free twin.
ChaosResult run_chaos(const snn::SnnModel& model,
                      const std::vector<snn::SpikeTrain>& pool, std::size_t threads,
                      double capacity, std::size_t total) {
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const std::size_t workers = std::max<std::size_t>(
        1, threads == 0 ? hw : std::min(threads, hw));

    ChaosResult result;
    result.run = true;
    result.offered_rps = 2.0 * capacity;

    util::FaultPlan plan_a;
    plan_a.seed = 0xC4A05;
    plan_a.throw_probability = 0.01;
    plan_a.transient_probability = 0.01;
    util::FaultPlan plan_b = plan_a;
    plan_b.seed = plan_a.seed + 1;

    // Per-tenant submission counts are deterministic (kBlock admits
    // everything), so each lane's admission range — and therefore its
    // exact faulted set — is known client-side before the storm runs.
    std::array<std::size_t, kTenants.size()> counts{};
    std::size_t count_a = 0, count_b = 0;
    result.total = 0;
    for (std::size_t t = 0; t < kTenants.size(); ++t) {
        counts[t] = static_cast<std::size_t>(
            kTenants[t].share * static_cast<double>(total) + 0.5);
        result.total += counts[t];
        count_a += (counts[t] + 1) / 2;  // each tenant alternates, a first
        count_b += counts[t] / 2;
    }
    const util::FaultInjector oracle_a(plan_a), oracle_b(plan_b);
    const auto expect = [](const util::FaultInjector& oracle, std::size_t count,
                           util::FaultKind kind) {
        std::size_t n = 0;
        for (std::uint64_t s = 0; s < count; ++s) {
            if (oracle.decide(s) == kind) ++n;
        }
        return n;
    };
    result.expected_failed = expect(oracle_a, count_a, util::FaultKind::kThrow) +
                             expect(oracle_b, count_b, util::FaultKind::kThrow);
    result.expected_retried =
        expect(oracle_a, count_a, util::FaultKind::kTransient) +
        expect(oracle_b, count_b, util::FaultKind::kTransient);

    core::ServerOptions storm_options{
        .threads = workers,
        .max_queue = 64,
        .max_batch = 2 * workers,
        .backpressure = core::BackpressurePolicy::kBlock,
        .slo_us = 10'000.0,
        .tenant_weights = {{"premium", 4}, {"standard", 2}, {"batch", 1}},
    };
    // The ledger gates assume the breaker never trips (a tripped lane
    // with no fallback would fail-fast healthy requests): a 1% storm is
    // load the lane should absorb request-by-request.
    storm_options.fault.breaker_failures = 0;
    storm_options.fault.breaker_failure_rate = 2.0;

    struct StormOutcome {
        core::ServerStats stats;
        double premium_p99_us = 0.0;
        double wall_ms = 0.0;
    };
    const auto storm = [&](bool faulty) {
        auto base_a = std::make_shared<core::FunctionalBackend>(model, lean_engine_config());
        auto base_b = std::make_shared<core::FunctionalBackend>(model, lean_engine_config());
        (void)calibrate_capacity(base_a, pool, threads, 8);
        (void)calibrate_capacity(base_b, pool, threads, 8);
        core::Server server(storm_options);
        server.register_model(
            "vgg-a", faulty ? std::make_shared<core::FaultyBackend>(base_a, plan_a)
                            : std::static_pointer_cast<core::Backend>(base_a));
        server.register_model(
            "vgg-b", faulty ? std::make_shared<core::FaultyBackend>(base_b, plan_b)
                            : std::static_pointer_cast<core::Backend>(base_b));

        std::vector<std::thread> submitters;
        const util::WallTimer wall;
        for (std::size_t t = 0; t < kTenants.size(); ++t) {
            submitters.emplace_back([&, t] {
                const TenantSpec& spec = kTenants[t];
                const auto interval = std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        1.0 / (spec.share * result.offered_rps)));
                std::vector<std::future<core::Response>> futures;
                futures.reserve(counts[t]);
                auto next = Clock::now();
                for (std::size_t i = 0; i < counts[t]; ++i) {
                    std::this_thread::sleep_until(next);
                    next += interval;
                    futures.push_back(server.submit(
                        core::Request::view_train(pool[(t * 977 + i) % pool.size()])
                            .with(i % 2 == 0 ? "vgg-a" : "vgg-b", spec.name,
                                  spec.priority)));
                }
                // Failures arrive as structured-error values, so every
                // future resolves via get() — none throw, none dropped.
                for (auto& f : futures) (void)f.get();
            });
        }
        for (auto& t : submitters) t.join();
        StormOutcome outcome;
        outcome.wall_ms = wall.millis();
        server.shutdown();
        outcome.stats = server.stats();
        const auto it = outcome.stats.tenants.find("premium");
        if (it != outcome.stats.tenants.end()) {
            outcome.premium_p99_us = it->second.latency_us.p99();
        }
        return outcome;
    };

    const StormOutcome clean = storm(/*faulty=*/false);
    result.fault_free_premium_p99_us = clean.premium_p99_us;
    const StormOutcome chaos = storm(/*faulty=*/true);
    result.premium_p99_us = chaos.premium_p99_us;
    result.aggregate_rps =
        1e3 * static_cast<double>(chaos.stats.completed) / chaos.wall_ms;
    result.completed = chaos.stats.completed;
    result.failed = chaos.stats.failed;
    result.retried = chaos.stats.retried;
    result.failed_over = chaos.stats.failed_over;
    result.isolated_waves = chaos.stats.isolated_waves;
    return result;
}

std::vector<std::string> chaos_check_errors(const ChaosResult& c) {
    std::vector<std::string> errors;
    if (c.completed != c.total - c.expected_failed ||
        c.failed != c.expected_failed) {
        std::ostringstream err;
        err << "chaos ledger: completed=" << c.completed << " failed=" << c.failed
            << " of total=" << c.total << ", expected exactly "
            << c.expected_failed << " seeded failures (a non-faulted request "
            << "was lost or a faulted one silently dropped)";
        errors.push_back(err.str());
    }
    if (c.retried != c.expected_retried) {
        std::ostringstream err;
        err << "chaos ledger: retried=" << c.retried << ", expected "
            << c.expected_retried << " (one retry per seeded transient)";
        errors.push_back(err.str());
    }
    if (c.failed_over != 0) {
        std::ostringstream err;
        err << "chaos ledger: failed_over=" << c.failed_over
            << " with no fallback registered";
        errors.push_back(err.str());
    }
    // The degradation gate: a 1% storm costs bisection re-runs, not a
    // latency regime — premium p99 stays within 2x of its fault-free
    // twin (floored at 1.5ms, same run-to-run noise floor as the
    // mixed-tenant gate).
    const double gate = 2.0 * std::max(c.fault_free_premium_p99_us, 1500.0);
    if (c.completed > 0 && c.premium_p99_us > gate) {
        std::ostringstream err;
        err << "chaos premium p99=" << c.premium_p99_us << "us exceeds " << gate
            << "us (2x fault-free " << c.fault_free_premium_p99_us << "us)";
        errors.push_back(err.str());
    }
    return errors;
}

void write_json(const std::string& path, const std::vector<LoadPoint>& rows,
                const std::vector<std::pair<std::string, double>>& single_p99,
                const std::vector<ExitLanePoint>& exit_rows,
                const MixedResult& mixed, const ChaosResult& chaos, bool quick,
                std::size_t threads) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::cerr << "serving_latency: cannot open " << path << "\n";
        std::exit(EXIT_FAILURE);
    }
    out << "{\n  \"bench\": \"serving_latency\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"max_batch\": " << kMaxBatch << ",\n"
        << "  \"batching\": \"continuous\",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const LoadPoint& r = rows[i];
        out << "    {\"backend\": \"" << r.backend
            << "\", \"fraction\": " << r.fraction
            << ", \"offered_rps\": " << r.offered_rps
            << ", \"achieved_rps\": " << r.achieved_rps
            << ", \"p50_us\": " << r.p50_us << ", \"p95_us\": " << r.p95_us
            << ", \"p99_us\": " << r.p99_us
            << ", \"client_p99_us\": " << r.client_p99_us
            << ", \"mean_batch\": " << r.mean_batch
            << ", \"completed\": " << r.completed
            << ", \"rejected\": " << r.rejected << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"single_request\": [\n";
    for (std::size_t i = 0; i < single_p99.size(); ++i) {
        out << "    {\"backend\": \"" << single_p99[i].first
            << "\", \"p99_us\": " << single_p99[i].second << "}"
            << (i + 1 < single_p99.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"early_exit\": [\n";
    for (std::size_t i = 0; i < exit_rows.size(); ++i) {
        const ExitLanePoint& e = exit_rows[i];
        out << "    {\"backend\": \"" << e.backend
            << "\", \"margin\": " << e.margin
            << ", \"timesteps\": " << e.timesteps
            << ", \"completed\": " << e.completed
            << ", \"exited\": " << e.exited
            << ", \"mean_steps\": " << e.mean_steps
            << ", \"p50_steps\": " << e.p50_steps
            << ", \"p99_steps\": " << e.p99_steps << "}"
            << (i + 1 < exit_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"mixed_tenant\": {\n"
        << "    \"offered_rps\": " << mixed.offered_rps << ",\n"
        << "    \"aggregate_rps\": " << mixed.aggregate_rps << ",\n"
        << "    \"unloaded_premium_p99_us\": " << mixed.unloaded_premium_p99_us
        << ",\n"
        << "    \"max_batch\": " << mixed.max_batch << ",\n"
        << "    \"oversub\": " << mixed.oversub << ",\n"
        << "    \"tenants\": [\n";
    for (std::size_t i = 0; i < mixed.tenants.size(); ++i) {
        const TenantPoint& t = mixed.tenants[i];
        out << "      {\"tenant\": \"" << t.name
            << "\", \"attempted\": " << t.attempted
            << ", \"submitted\": " << t.submitted
            << ", \"completed\": " << t.completed
            << ", \"rejected\": " << t.rejected << ", \"shed\": " << t.shed
            << ", \"p50_us\": " << t.p50_us << ", \"p99_us\": " << t.p99_us
            << ", \"slo_burn\": " << t.slo_burn << "}"
            << (i + 1 < mixed.tenants.size() ? "," : "") << "\n";
    }
    out << "    ]\n  },\n  \"chaos\": {\n"
        << "    \"run\": " << (chaos.run ? "true" : "false") << ",\n"
        << "    \"offered_rps\": " << chaos.offered_rps << ",\n"
        << "    \"aggregate_rps\": " << chaos.aggregate_rps << ",\n"
        << "    \"fault_free_premium_p99_us\": " << chaos.fault_free_premium_p99_us
        << ",\n"
        << "    \"premium_p99_us\": " << chaos.premium_p99_us << ",\n"
        << "    \"total\": " << chaos.total << ",\n"
        << "    \"completed\": " << chaos.completed << ",\n"
        << "    \"failed\": " << chaos.failed << ",\n"
        << "    \"retried\": " << chaos.retried << ",\n"
        << "    \"failed_over\": " << chaos.failed_over << ",\n"
        << "    \"isolated_waves\": " << chaos.isolated_waves << ",\n"
        << "    \"expected_failed\": " << chaos.expected_failed << ",\n"
        << "    \"expected_retried\": " << chaos.expected_retried << "\n"
        << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool check = false;
    bool with_chaos = false;
    std::string out_path = "BENCH_SERVING.json";
    std::size_t threads = 4;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
            with_chaos = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else {
            std::cerr << "usage: serving_latency [--quick] [--check] [--chaos] "
                         "[--out <path>] [--threads <n>]\n";
            return EXIT_FAILURE;
        }
    }

    bench::print_header("Serving latency under offered load (core::Server)");

    nn::VggConfig cfg;
    cfg.width = 8;
    cfg.input_size = 16;
    const auto ann = bench::calibrated_model<nn::Vgg11>(cfg);
    const auto model = core::AnnToSnnConverter(core::ConvertOptions{}).convert(ann->ir());
    const std::int64_t timesteps = 6;
    const auto pool = make_pool(model, 32, timesteps);

    // 0.25x stays in both sweeps: it carries the low-load tail gate.
    const std::vector<double> load_fractions =
        quick ? std::vector<double>{0.25, 2.0}
              : std::vector<double>{0.25, 0.5, 1.0, 2.0};
    const std::size_t submitters = 2;

    std::vector<LoadPoint> rows;
    std::vector<std::pair<std::string, double>> single_p99;
    util::Table table("serving_latency" + std::string(quick ? " (quick)" : "") +
                      ", VGG-11 w=8, T=6, threads=" + std::to_string(threads));
    table.header({"backend", "offered r/s", "achieved r/s", "p50 ms", "p95 ms",
                  "p99 ms", "mean batch"});

    bool check_failed = false;
    double functional_capacity = 0.0;
    double functional_2x_rps = 0.0;
    const auto sweep = [&](const std::string& name,
                           const std::function<std::shared_ptr<core::Backend>()>&
                               make_backend) {
        // 48 requests even in quick mode: the calibration sets every
        // offered rate and the aggregate-throughput gate's reference —
        // a 16-request sample swings ~20% run-to-run, which dwarfs the
        // 10% the gate polices.
        const double capacity = calibrate_capacity(
            make_backend(), pool, threads, quick ? 48 : 64);
        if (name == "functional") functional_capacity = capacity;

        // Single-request latency floor for this backend: the reference
        // for the low-load tail gate (continuous batching must dispatch
        // a lone request immediately — no admission-window stall).
        auto solo_backend = make_backend();
        (void)calibrate_capacity(solo_backend, pool, threads, quick ? 4 : 8);
        const auto solo =
            measure_single_request(solo_backend, pool, threads, quick ? 8 : 32);
        single_p99.emplace_back(name, solo.p99());

        // Round to a submitter multiple: run_load splits total evenly, so
        // a remainder would be requests the --check gate counts as lost.
        const std::size_t raw_total =
            quick ? 2 * submitters * 8
                  : std::max<std::size_t>(64, static_cast<std::size_t>(capacity / 4));
        const std::size_t total =
            std::max<std::size_t>(1, raw_total / submitters) * submitters;
        for (const double fraction : load_fractions) {
            const double offered = std::max(1.0, capacity * fraction);
            // A fresh backend per point keeps per-point warm-up visible in
            // none of the latency numbers (the calibration already warmed
            // per-worker state on the shared instance; here we re-warm).
            auto backend = make_backend();
            (void)calibrate_capacity(backend, pool, threads, quick ? 4 : 8);
            LoadPoint point = run_load(backend, name, pool, threads, offered,
                                       total, submitters);
            point.fraction = fraction;
            if (name == "functional" && fraction == 2.0) {
                functional_2x_rps = point.achieved_rps;
            }
            rows.push_back(point);
            table.row({name, util::cell(point.offered_rps, 1),
                       util::cell(point.achieved_rps, 1),
                       util::cell(point.p50_us / 1e3, 2),
                       util::cell(point.p95_us / 1e3, 2),
                       util::cell(point.p99_us / 1e3, 2),
                       util::cell(point.mean_batch, 2)});
            if (check) {
                const bool lost = point.completed != total || point.rejected != 0;
                const bool disordered =
                    !(point.p50_us > 0.0) || point.p50_us > point.p95_us + 1e-9 ||
                    point.p95_us > point.p99_us + 1e-9;
                const bool stalled = !(point.achieved_rps > 0.0);
                // The tail gate: at 0.25x load a request should ride a
                // wave of ~1. A reintroduced admission window would add
                // its wait to (nearly) every request, so gate the
                // *median* against the single-request median plus slack
                // — the median of N samples is robust where the p99 (the
                // max, at this sample count) flakes on scheduler noise.
                // The slack is a full solo-median (floored at 1ms): the
                // solo reference runs sequentially while the load point
                // runs submitters + workers concurrently, so contention
                // alone moves the median — this trips on multi-ms
                // stalls, and test_server's continuous-batching test
                // pins the subtle ones deterministically. A loose 8x
                // p99 sanity bound still catches a lone request parked
                // on a timeout.
                const bool tail_stall =
                    fraction == 0.25 &&
                    (point.p50_us > solo.p50() + std::max(1000.0, solo.p50()) ||
                     point.p99_us > 8.0 * std::max(solo.p99(), 1000.0));
                if (lost || disordered || stalled || tail_stall) {
                    check_failed = true;
                    std::cerr << "CHECK FAILED: backend=" << name << " offered="
                              << offered << " completed=" << point.completed << "/"
                              << total << " rejected=" << point.rejected
                              << " p50/p95/p99=" << point.p50_us << "/"
                              << point.p95_us << "/" << point.p99_us
                              << " single_p50/p99=" << solo.p50() << "/"
                              << solo.p99()
                              << (tail_stall ? " (low-load tail regression)" : "")
                              << "\n";
                }
            }
        }
    };

    sweep("functional", [&] {
        return std::make_shared<core::FunctionalBackend>(model, lean_engine_config());
    });
    table.separator();
    sweep("sia", [&] { return std::make_shared<core::SiaBackend>(model); });

    // Mixed-tenant overload storm (functional backends: the scenario
    // stresses the serving layer, not the engine). Long enough that
    // its aggregate throughput is comparable against the sweep
    // reference within the gate's tolerance — a short storm measures
    // mostly ramp and drain.
    const std::size_t mixed_total =
        quick ? 320
              : std::max<std::size_t>(
                    300, static_cast<std::size_t>(functional_capacity));

    const auto mixed_check_errors = [&](const MixedResult& m) {
        std::vector<std::string> errors;
        const TenantPoint& premium = m.tenants.front();
        // The unloaded baseline is measured on an idle box, but under
        // the storm every request's wall time inherits the other
        // lane's CPU share whenever the two lanes have more workers
        // than the hardware has cores — scale the reference by that
        // oversubscription factor (1.0 on any adequately sized box,
        // including CI) so the gate measures scheduling quality, not
        // core count. The baseline is floored at 1.5ms: it swings
        // ~1.5x run-to-run on a busy box (it is itself a p99 of 32
        // samples), and the gate must not inherit that noise.
        const double premium_gate =
            3.0 * m.oversub * std::max(m.unloaded_premium_p99_us, 1500.0);
        if (premium.completed == 0 || premium.p99_us > premium_gate) {
            std::ostringstream err;
            err << "mixed-tenant premium p99=" << premium.p99_us << "us exceeds "
                << premium_gate << "us (3x unloaded p99 "
                << m.unloaded_premium_p99_us << "us x oversub " << m.oversub << ")";
            errors.push_back(err.str());
        }
        // Both single-tenant references are noisy estimates of the
        // same machine capacity (the calibration run and the 2x sweep
        // point can disagree by 10-20% run-to-run); gate against the
        // more conservative of the two so one high roll on the
        // reference side doesn't fail an unchanged scheduler. Quick
        // mode gets 0.85 instead of 0.9: its storm is short enough
        // that ramp/drain and the smaller wave cap cost a few percent
        // that the full run amortizes away.
        const double aggregate_factor = quick ? 0.85 : 0.9;
        const double single_tenant_rps =
            std::min(functional_2x_rps, functional_capacity);
        if (m.aggregate_rps < aggregate_factor * single_tenant_rps) {
            std::ostringstream err;
            err << "mixed-tenant aggregate " << m.aggregate_rps << " r/s under "
                << aggregate_factor << "x single-tenant " << single_tenant_rps
                << " r/s";
            errors.push_back(err.str());
        }
        for (const TenantPoint& t : m.tenants) {
            if (t.completed > 0 && t.p50_us > t.p99_us + 1e-9) {
                std::ostringstream err;
                err << "mixed-tenant " << t.name << " p50 " << t.p50_us << " > p99 "
                    << t.p99_us;
                errors.push_back(err.str());
            }
            if (t.submitted + t.rejected != t.attempted ||
                t.completed + t.shed != t.submitted) {
                std::ostringstream err;
                err << "mixed-tenant " << t.name << " ledger: attempted="
                    << t.attempted << " submitted=" << t.submitted << " rejected="
                    << t.rejected << " completed=" << t.completed << " shed="
                    << t.shed;
                errors.push_back(err.str());
            }
        }
        return errors;
    };

    MixedResult mixed =
        run_mixed(model, pool, threads, functional_capacity, mixed_total);
    if (check && !mixed_check_errors(mixed).empty()) {
        // One retry before declaring failure: the storm is a sub-second
        // sample on a possibly shared box, and a single CPU-frequency
        // or scheduler hiccup can cost 20% of it. A real scheduling
        // regression fails both attempts.
        mixed = run_mixed(model, pool, threads, functional_capacity, mixed_total);
    }
    table.separator();
    for (const TenantPoint& t : mixed.tenants) {
        table.row({"mixed:" + t.name,
                   util::cell(mixed.offered_rps, 1),
                   util::cell(mixed.aggregate_rps, 1),
                   util::cell(t.p50_us / 1e3, 2), "-",
                   util::cell(t.p99_us / 1e3, 2),
                   util::cell(static_cast<double>(t.shed), 0)});
    }

    if (check) {
        for (const std::string& error : mixed_check_errors(mixed)) {
            check_failed = true;
            std::cerr << "CHECK FAILED: " << error << "\n";
        }
    }

    // Chaos storm (--chaos): the same overload shape with a seeded 1%
    // fault plan on both lanes, gated against its fault-free twin.
    ChaosResult chaos;
    if (with_chaos) {
        // Every injected fault logs one warning; the storm seeds a few
        // dozen of them by design.
        util::set_log_level(util::LogLevel::kError);
        chaos = run_chaos(model, pool, threads, functional_capacity, mixed_total);
        if (check) {
            auto errors = chaos_check_errors(chaos);
            if (!errors.empty()) {
                // The ledger is deterministic; only the p99 gate is
                // noise-sensitive. One retry, same policy as the
                // mixed-tenant gate.
                chaos = run_chaos(model, pool, threads, functional_capacity,
                                  mixed_total);
                errors = chaos_check_errors(chaos);
            }
            for (const std::string& error : errors) {
                check_failed = true;
                std::cerr << "CHECK FAILED: " << error << "\n";
            }
        }
        table.separator();
        table.row({"chaos:clean", util::cell(chaos.offered_rps, 1), "-", "-", "-",
                   util::cell(chaos.fault_free_premium_p99_us / 1e3, 2), "-"});
        table.row({"chaos:storm", util::cell(chaos.offered_rps, 1),
                   util::cell(chaos.aggregate_rps, 1), "-", "-",
                   util::cell(chaos.premium_p99_us / 1e3, 2),
                   util::cell(static_cast<double>(chaos.failed), 0)});
    }

    // Early-exit lanes: the same pool served with a per-request margin
    // criterion on each backend. Responses report steps_used, so this is
    // the serving-side cost model for temporal early exit — the accuracy
    // side lives in BENCH_EARLY_EXIT.json. Both lanes receive the same
    // requests in the same order, and exit decisions are deterministic
    // per item, so the two step distributions must match exactly.
    const std::int64_t exit_margin = 4;
    const std::size_t exit_total = quick ? 32 : 128;
    std::vector<ExitLanePoint> exit_rows;
    exit_rows.push_back(measure_early_exit(
        "functional",
        std::make_shared<core::FunctionalBackend>(model, lean_engine_config()),
        pool, threads, timesteps, exit_margin, exit_total));
    exit_rows.push_back(measure_early_exit(
        "sia", std::make_shared<core::SiaBackend>(model), pool, threads,
        timesteps, exit_margin, exit_total));
    table.separator();
    for (const ExitLanePoint& e : exit_rows) {
        table.row({"exit:" + e.backend, "-", "-",
                   util::cell(e.p50_steps, 2), "-",
                   util::cell(e.p99_steps, 2),
                   util::cell(e.mean_steps, 2)});
    }
    if (check) {
        for (const ExitLanePoint& e : exit_rows) {
            const bool lost = e.completed != exit_total;
            const bool out_of_range =
                e.mean_steps < 2.0 - 1e-9 ||
                e.p99_steps > static_cast<double>(timesteps) + 1e-9;
            const bool disordered = e.p50_steps > e.p99_steps + 1e-9;
            if (lost || out_of_range || disordered || e.exited > e.completed) {
                check_failed = true;
                std::cerr << "CHECK FAILED: early-exit lane " << e.backend
                          << " completed=" << e.completed << "/" << exit_total
                          << " exited=" << e.exited
                          << " steps mean/p50/p99=" << e.mean_steps << "/"
                          << e.p50_steps << "/" << e.p99_steps
                          << " outside [min_steps=2, T=" << timesteps << "]\n";
            }
        }
        const ExitLanePoint& a = exit_rows[0];
        const ExitLanePoint& b = exit_rows[1];
        if (a.exited != b.exited || a.mean_steps != b.mean_steps ||
            a.p50_steps != b.p50_steps || a.p99_steps != b.p99_steps) {
            check_failed = true;
            std::cerr << "CHECK FAILED: early-exit step distributions diverge "
                         "across backends (functional mean/p50/p99="
                      << a.mean_steps << "/" << a.p50_steps << "/" << a.p99_steps
                      << " exited=" << a.exited << ", sia=" << b.mean_steps << "/"
                      << b.p50_steps << "/" << b.p99_steps
                      << " exited=" << b.exited
                      << ") — per-item decisions must be backend-invariant\n";
        }
    }

    table.print(std::cout);
    write_json(out_path, rows, single_p99, exit_rows, mixed, chaos, quick,
               threads);
    std::cout << "wrote " << out_path << "\n";

    if (check_failed) {
        std::cerr << "FATAL: serving loop lost requests or produced degenerate "
                     "latency stats\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
}
