// Ablation — input coding: raw-pixel thermometer spikes into the full
// on-accelerator network vs the PS-side front layer ("frame data
// conversion", §IV) feeding layer-1 activations as spikes.
//
// This is the reproduction's key low-latency finding: with binary pixel
// coding the deep networks need 2-3x more timesteps to converge; running
// the first conv on the processor (as the ZYNQ's frame-conversion role
// permits) restores the paper's <=8-timestep operating point.
#include "bench/common.hpp"
#include "core/convert.hpp"

int main() {
    using namespace sia;
    bench::print_header(
        "Ablation: input coding — pixel spikes vs PS-side front layer (VGG-11)");
    util::WallTimer timer;

    auto trained = bench::train_model(/*resnet=*/false, /*width=*/8);
    const std::int64_t timesteps = 24;

    // Variant A: whole network on the SIA, pixel thermometer coding.
    core::ConvertOptions pixel_opts;
    pixel_opts.host_front_layers = 0;
    const auto pixel_model =
        core::AnnToSnnConverter(pixel_opts).convert(trained.model->ir());
    const auto pixel_acc = core::evaluate_snn_over_time(
        pixel_model, trained.data.test, timesteps, core::pixel_encoder());

    // Variant B: first conv on the PS (the bench default).
    const auto hybrid_acc = core::evaluate_snn_over_time(
        trained.result.snn, trained.data.test, timesteps, trained.encoder());

    util::Table table("accuracy (%) vs timesteps");
    table.header({"T", "pixel-coded", "PS front layer", "delta"});
    for (const std::int64_t t : {2L, 4L, 6L, 8L, 12L, 16L, 20L, 24L}) {
        const double a = pixel_acc[static_cast<std::size_t>(t - 1)] * 100.0;
        const double b = hybrid_acc[static_cast<std::size_t>(t - 1)] * 100.0;
        table.row({util::cell(t), util::cell(a, 1), util::cell(b, 1),
                   util::cell(b - a, 1)});
    }
    table.print(std::cout);
    std::cout << "ANN reference: " << util::cell(trained.result.ann_accuracy * 100.0, 1)
              << "%\n";
    std::cout << "(" << util::cell(timer.seconds(), 1) << " s)\n";
    return 0;
}
