// Ablation — reset-by-subtraction vs reset-to-zero (§II): the paper
// chooses reset-by-subtraction "as this approach has demonstrated better
// classification accuracy". This bench converts the same trained model
// both ways and compares accuracy over timesteps, plus the IF-vs-LIF
// hardware mode bit.
#include "bench/common.hpp"
#include "core/convert.hpp"

int main() {
    using namespace sia;
    bench::print_header(
        "Ablation: reset-by-subtraction vs reset-to-zero, IF vs LIF (VGG-11)");
    util::WallTimer timer;

    auto trained = bench::train_model(/*resnet=*/false, /*width=*/8);
    const auto encoder = trained.encoder();
    const std::int64_t timesteps = 16;

    struct Variant {
        const char* name;
        snn::ResetMode reset;
        snn::NeuronKind neuron;
    };
    const Variant variants[] = {
        {"IF + reset-by-subtraction (paper)", snn::ResetMode::kSubtract,
         snn::NeuronKind::kIf},
        {"IF + reset-to-zero", snn::ResetMode::kZero, snn::NeuronKind::kIf},
        {"LIF + reset-by-subtraction", snn::ResetMode::kSubtract,
         snn::NeuronKind::kLif},
    };

    util::Table table("accuracy (%) vs timesteps");
    table.header({"variant", "T=4", "T=8", "T=12", "T=16"});
    std::vector<double> paper_variant_t16;
    for (const Variant& v : variants) {
        core::ConvertOptions opts;
        opts.reset = v.reset;
        opts.neuron = v.neuron;
        opts.host_front_layers = 1;
        const auto model = core::AnnToSnnConverter(opts).convert(trained.model->ir());
        const auto acc =
            core::evaluate_snn_over_time(model, trained.data.test, timesteps, encoder);
        table.row({v.name, util::cell(acc[3] * 100.0, 1), util::cell(acc[7] * 100.0, 1),
                   util::cell(acc[11] * 100.0, 1), util::cell(acc[15] * 100.0, 1)});
        paper_variant_t16.push_back(acc[15]);
    }
    table.print(std::cout);
    std::cout << "ANN reference: " << util::cell(trained.result.ann_accuracy * 100.0, 1)
              << "%, quantized ANN: "
              << util::cell(trained.result.qann_accuracy * 100.0, 1) << "%\n";
    std::cout << "expected ordering (paper S II): reset-by-subtraction >= reset-to-zero\n"
              << "measured: " << util::cell(paper_variant_t16[0] * 100.0, 1) << "% vs "
              << util::cell(paper_variant_t16[1] * 100.0, 1) << "%\n";
    std::cout << "(" << util::cell(timer.seconds(), 1) << " s)\n";
    return 0;
}
