// Shared bench-harness setup.
//
// Every figure/table bench trains (or calibrates) its own model so each
// binary is self-contained and reproducible in isolation. Two regimes:
//
//  * accuracy/spike-rate benches (Figs. 6-9, ablations) train reduced-
//    width models on the synthetic dataset — the DESIGN.md substitution
//    for GPU CIFAR-10 training;
//  * latency/resource benches (Tables I-IV) run the paper's full-width
//    topologies with calibrated random weights: cycle counts depend on
//    spike activity and geometry, not on task accuracy.
//
// Benches print the paper's reported value next to the measured value
// wherever the paper states one; EXPERIMENTS.md catalogues the deltas.
#pragma once

#include <iostream>
#include <memory>

#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/vgg.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace sia::bench {

/// Standard synthetic dataset for accuracy benches (CIFAR substitute).
inline data::TrainTest bench_dataset() {
    data::SyntheticConfig cfg;
    cfg.train_per_class = 80;
    cfg.test_per_class = 20;
    return data::make_synthetic(cfg);
}

/// Standard pipeline hyperparameters for accuracy benches.
inline core::PipelineConfig bench_pipeline_config() {
    core::PipelineConfig cfg;
    cfg.train.epochs = 5;
    cfg.train.batch_size = 32;
    cfg.levels = 2;  // the paper's L=2 quantized ReLU
    cfg.finetune_epochs = 3;
    cfg.convert.host_front_layers = 1;  // PS-side frame conversion (§IV)
    return cfg;
}

struct TrainedModel {
    data::TrainTest data;
    std::unique_ptr<nn::Model> model;
    core::PipelineResult result;
    std::unique_ptr<core::HybridFrontEnd> front_end;  // null when pixel-coded

    [[nodiscard]] core::InputEncoder encoder() const {
        if (front_end == nullptr) return core::pixel_encoder();
        const core::HybridFrontEnd* fe = front_end.get();
        return [fe](const tensor::Tensor& img, std::int64_t timesteps) {
            return fe->encode(img, timesteps);
        };
    }
};

/// Train + quantize + convert a reduced-width model of the given family.
inline TrainedModel train_model(bool resnet, std::int64_t width,
                                core::PipelineConfig cfg = bench_pipeline_config()) {
    TrainedModel out;
    out.data = bench_dataset();
    util::Rng rng(7);
    if (resnet) {
        nn::ResNetConfig mcfg;
        mcfg.width = width;
        out.model = std::make_unique<nn::ResNet18>(mcfg, rng);
    } else {
        nn::VggConfig mcfg;
        mcfg.width = width;
        out.model = std::make_unique<nn::Vgg11>(mcfg, rng);
    }
    const core::Pipeline pipeline(cfg);
    out.result = pipeline.run(*out.model, out.data.train, out.data.test);
    if (cfg.convert.host_front_layers > 0) {
        out.front_end = std::make_unique<core::HybridFrontEnd>(
            out.model->ir(), cfg.convert.host_front_layers);
    }
    return out;
}

/// Full-width topology with calibrated random weights (latency benches).
template <typename ModelT, typename ConfigT>
std::unique_ptr<ModelT> calibrated_model(ConfigT cfg, int levels = 2,
                                         std::uint64_t seed = 97) {
    util::Rng rng(seed);
    auto model = std::make_unique<ModelT>(cfg, rng);
    tensor::Tensor x(tensor::Shape{2, cfg.input_channels, cfg.input_size, cfg.input_size});
    for (std::int64_t i = 0; i < x.numel(); ++i) x.flat(i) = rng.uniform(0.0F, 1.0F);
    for (int rep = 0; rep < 3; ++rep) (void)model->forward(x, true);  // warm BN
    model->begin_activation_calibration();
    (void)model->forward(x, false);
    model->end_activation_calibration();
    model->enable_quantized_activations(levels);
    return model;
}

inline void print_header(const std::string& title) {
    std::cout << "==============================================================\n"
              << title << "\n"
              << "==============================================================\n";
}

}  // namespace sia::bench
