// Table III — FPGA resource utilisation of the SIA on the PYNQ-Z2
// (XC7Z020), from the block-level analytic resource model, plus the
// 1.54 W board power figure.
#include "bench/common.hpp"
#include "hw/power.hpp"
#include "hw/resources.hpp"

int main() {
    using namespace sia;
    bench::print_header("Table III: FPGA resource utilisation (PYNQ-Z2)");

    const sim::SiaConfig cfg;
    const hw::ResourceReport rep = hw::estimate_resources(cfg);

    util::Table blocks("block-level breakdown");
    blocks.header({"block", "LUT", "FF", "DSP", "BRAM36", "LUTRAM", "BUFG"});
    for (const auto& b : rep.blocks) {
        blocks.row({b.name, util::cell(b.res.lut), util::cell(b.res.ff),
                    util::cell(b.res.dsp), util::cell(b.res.bram36),
                    util::cell(b.res.lutram), util::cell(b.res.bufg)});
    }
    blocks.print(std::cout);

    util::Table table("Table III (measured vs paper)");
    table.header({"Parameter", "Utilized", "Available", "Percentage", "paper"});
    table.row({"LUTs", util::cell(rep.total.lut), util::cell(rep.capacity.lut),
               util::cell_pct(rep.lut_pct()), "11932 (22.43%)"});
    table.row({"FFs", util::cell(rep.total.ff), util::cell(rep.capacity.ff),
               util::cell_pct(rep.ff_pct()), "8157 (7.67%)"});
    table.row({"DSPs", util::cell(rep.total.dsp), util::cell(rep.capacity.dsp),
               util::cell_pct(rep.dsp_pct()), "17 (7.67%)"});
    table.row({"BRAMs", util::cell(rep.total.bram36), util::cell(rep.capacity.bram36),
               util::cell_pct(rep.bram_pct()), "95 (67.86%)"});
    table.row({"LUTRAMs", util::cell(rep.total.lutram), util::cell(rep.capacity.lutram),
               util::cell_pct(rep.lutram_pct()), "158 (0.90%)"});
    table.row({"BUFG", util::cell(rep.total.bufg), util::cell(rep.capacity.bufg),
               util::cell_pct(rep.bufg_pct()), "1 (3.13%)"});
    table.print(std::cout);

    std::cout << "board power: " << util::cell(hw::rated_board_watts(), 2)
              << " W (paper: 1.54 W)\n";
    std::cout << "peak throughput: " << util::cell(cfg.peak_gops(), 1)
              << " GOPS (paper: 38.4), " << util::cell(cfg.peak_gops() / 64.0, 2)
              << " GOPS/PE (paper: 0.6)\n";
    return 0;
}
