// Fig. 9 — Classification accuracy of the 8-bit VGG-11 SNN vs timesteps.
// Paper (CIFAR-10): ANN 91.25%, quantized ANN 90.05%, SNN 90.47%.
#include "bench/common.hpp"
#include "util/csv.hpp"

int main() {
    using namespace sia;
    bench::print_header(
        "Fig. 9: VGG-11 SNN accuracy vs timesteps (paper: ANN 91.25 / "
        "QANN 90.05 / SNN 90.47 @CIFAR-10)");
    util::WallTimer timer;

    const auto trained = bench::train_model(/*resnet=*/false, /*width=*/8);
    const std::int64_t timesteps = 30;
    const auto acc = core::evaluate_snn_over_time(
        trained.result.snn, trained.data.test, timesteps, trained.encoder());

    const double ann = trained.result.ann_accuracy * 100.0;
    const double qann = trained.result.qann_accuracy * 100.0;
    std::cout << "ANN (FP32)          : " << util::cell(ann, 2) << "%\n";
    std::cout << "ANN (quantized, L=2): " << util::cell(qann, 2) << "%\n";

    util::Table table("SNN accuracy vs timesteps (synthetic substitute)");
    table.header({"T", "SNN acc", "vs QANN", "vs ANN"});
    std::int64_t crossover = -1;
    for (std::int64_t t = 0; t < timesteps; ++t) {
        const double a = acc[static_cast<std::size_t>(t)] * 100.0;
        if (crossover < 0 && a >= qann) crossover = t + 1;
        table.row({util::cell(t + 1), util::cell_pct(a),
                   util::cell(a - qann, 2), util::cell(a - ann, 2)});
    }
    table.print(std::cout);
    std::cout << "SNN crosses the quantized-ANN line at T="
              << (crossover > 0 ? std::to_string(crossover) : std::string(">30"))
              << "  (paper: ~8)\n";
    std::cout << "final SNN-vs-ANN gap: "
              << util::cell(acc.back() * 100.0 - ann, 2) << " points (paper: <1)\n";

    util::CsvWriter csv("fig9_accuracy_vgg.csv");
    csv.row({"timesteps", "snn_acc", "ann_acc", "qann_acc"});
    for (std::int64_t t = 0; t < timesteps; ++t) {
        csv.row({std::to_string(t + 1),
                 util::cell(acc[static_cast<std::size_t>(t)] * 100.0, 3),
                 util::cell(ann, 3), util::cell(qann, 3)});
    }
    std::cout << "series written to fig9_accuracy_vgg.csv ("
              << util::cell(timer.seconds(), 1) << " s)\n";
    return 0;
}
