// Table IV — Performance comparison with prior art: platform, PE count,
// clock, throughput, PE efficiency, energy efficiency, DSP usage,
// GOPS/DSP. Prior-art rows are the published specs (recomputing the
// derived columns); the "This Work" row combines the configuration's
// peak throughput with the power model, plus a measured effective-GOPS
// figure from an actual simulator run and a dense MAC-array baseline for
// the mechanistic version of the efficiency comparison.
#include "bench/common.hpp"
#include "core/compiler.hpp"
#include "core/convert.hpp"
#include "hw/mac_baseline.hpp"
#include "hw/power.hpp"
#include "hw/prior_art.hpp"
#include "sim/sia.hpp"
#include "snn/encoding.hpp"

namespace {
std::string opt_cell(const std::optional<double>& v, int precision) {
    return v ? sia::util::cell(*v, precision) : "N/A";
}
std::string opt_cell_int(const std::optional<std::int64_t>& v) {
    return v ? sia::util::cell(*v) : "N/A";
}
}  // namespace

int main() {
    using namespace sia;
    bench::print_header("Table IV: performance comparison with prior art");

    const sim::SiaConfig cfg;
    const double watts = hw::rated_board_watts();
    auto specs = hw::prior_art_table();
    specs.push_back(hw::this_work_spec(cfg, watts, 17));

    util::Table table("Table IV");
    table.header({"Paper", "Platform", "#PEs", "Clock (MHz)", "GOPS", "GOPS/PE",
                  "GOPS/W", "DSP", "GOPS/DSP"});
    for (const auto& s : specs) {
        // [22]'s PE count is coarse-grained engines; the paper prints N/A
        // for its PE efficiency.
        const bool pe_eff_meaningful = s.citation != "[22]";
        table.row({s.citation, s.platform, opt_cell_int(s.pes),
                   util::cell(s.clock_mhz, 0), util::cell(s.gops, 1),
                   pe_eff_meaningful ? opt_cell(s.gops_per_pe(), 3) : "N/A",
                   opt_cell(s.gops_per_watt(), 2), opt_cell_int(s.dsp),
                   opt_cell(s.gops_per_dsp(), 2)});
    }
    table.print(std::cout);

    // Headline ratios.
    const auto& self = specs.back();
    double best_pe = 0.0;
    double best_dsp = 0.0;
    for (const auto& s : hw::prior_art_table()) {
        if (s.gops_per_pe() && s.citation != "[22]") {
            best_pe = std::max(best_pe, *s.gops_per_pe());
        }
        if (s.gops_per_dsp()) best_dsp = std::max(best_dsp, *s.gops_per_dsp());
    }
    std::cout << "PE-efficiency advantage over best prior art: "
              << util::cell(*self.gops_per_pe() / best_pe, 2) << "x (paper: 2x)\n";
    std::cout << "DSP-efficiency advantage over best prior art: "
              << util::cell(*self.gops_per_dsp() / best_dsp, 2) << "x (paper: 4.5x)\n";

    // Measured effective throughput from a real simulated inference.
    nn::VggConfig mcfg;
    mcfg.width = 64;
    const auto model = bench::calibrated_model<nn::Vgg11>(mcfg);
    const auto snn = core::AnnToSnnConverter().convert(model->ir());
    const auto program = core::SiaCompiler(cfg).compile(snn);
    sim::Sia sia(cfg, snn, program);
    util::Rng rng(5);
    tensor::Tensor img(tensor::Shape{1, 3, 32, 32});
    for (std::int64_t i = 0; i < img.numel(); ++i) img.flat(i) = rng.uniform(0.0F, 1.0F);
    const auto res = sia.run(snn::encode_thermometer(img, 8));
    const auto power = hw::estimate_power(res, cfg);
    std::cout << "\nmeasured on simulator (VGG-11, T=8): "
              << util::cell(res.effective_gops(cfg), 1)
              << " effective GOPS (CNN-equivalent ops / PL busy time), "
              << util::cell(power.total_watts, 2) << " W, "
              << util::cell(power.gops_per_watt, 1) << " GOPS/W\n";

    // Mechanistic dense baseline: same network on a 64-MAC DSP array.
    const auto mac = hw::estimate_mac_array(snn, {});
    std::cout << "dense 64-MAC DSP-array baseline: " << util::cell(mac.peak_gops, 1)
              << " peak GOPS over " << mac.dsp << " DSPs = "
              << util::cell(mac.gops_per_dsp, 2) << " GOPS/DSP vs SIA's "
              << util::cell(cfg.peak_gops() / 17.0, 2)
              << " (the mux+adder PE uses no DSPs)\n";
    return 0;
}
