// Ablation — ping-pong membrane memory (Fig. 3): the U1/U2 organisation
// lets the PE pipeline read last-step potentials while writing updated
// ones. A single-bank organisation must serialise the read and write
// streams, doubling the aggregation-phase memory cycles; this bench
// quantifies the latency impact on a real workload plus the observed
// bank traffic, following the doubling-memory-bandwidth argument of the
// paper's reference [32].
#include "bench/common.hpp"
#include "core/compiler.hpp"
#include "core/convert.hpp"
#include "sim/sia.hpp"
#include "snn/encoding.hpp"

int main() {
    using namespace sia;
    bench::print_header("Ablation: ping-pong vs single-bank membrane memory");

    nn::VggConfig mcfg;
    mcfg.width = 64;
    const auto ann = bench::calibrated_model<nn::Vgg11>(mcfg);
    const auto model = core::AnnToSnnConverter().convert(ann->ir());

    const sim::SiaConfig cfg;
    const auto program = core::SiaCompiler(cfg).compile(model);
    sim::Sia sia(cfg, model, program);
    util::Rng rng(5);
    tensor::Tensor img(tensor::Shape{1, 3, 32, 32});
    for (std::int64_t i = 0; i < img.numel(); ++i) img.flat(i) = rng.uniform(0.0F, 1.0F);
    const auto res = sia.run(snn::encode_thermometer(img, 8));

    // Ping-pong: aggregation retires one neuron/cycle (read bank A, write
    // bank B concurrently). Single bank: the same port serves both
    // streams, so the retire phase serialises to 2 cycles/neuron.
    std::int64_t aggregate_cycles = 0;
    std::int64_t other_cycles = 0;
    for (const auto& s : res.layer_stats) {
        aggregate_cycles += s.aggregate;
        other_cycles += s.compute + s.dma + s.mmio + s.overhead;
    }
    const std::int64_t pingpong_total = aggregate_cycles + other_cycles;
    const std::int64_t single_total = 2 * aggregate_cycles + other_cycles;

    const auto& bank_r = sia.memory().membrane.read_bank();
    const auto& bank_w = sia.memory().membrane.write_bank();
    const std::int64_t traffic = bank_r.bytes_read() + bank_r.bytes_written() +
                                 bank_w.bytes_read() + bank_w.bytes_written();

    util::Table table("VGG-11, T=8, width 64");
    table.header({"organisation", "aggregate cycles", "total cycles", "latency (ms)",
                  "slowdown"});
    table.row({"ping-pong U1/U2 (paper)", util::cell(aggregate_cycles),
               util::cell(pingpong_total), util::cell(cfg.cycles_to_ms(pingpong_total), 2),
               "1.00x"});
    table.row({"single bank", util::cell(2 * aggregate_cycles), util::cell(single_total),
               util::cell(cfg.cycles_to_ms(single_total), 2),
               util::cell(static_cast<double>(single_total) /
                              static_cast<double>(pingpong_total),
                          2) +
                   "x"});
    table.print(std::cout);
    std::cout << "membrane bank traffic this run: " << traffic / 1024 << " kB across "
              << "U1+U2 (capacity " << 2 * sia.memory().membrane.bank_capacity() / 1024
              << " kB)\n";
    std::cout << "the ping-pong organisation doubles effective membrane bandwidth\n"
                 "for free BRAM cost (the 64 kB is split, not duplicated) — Fig. 3.\n";
    return 0;
}
